#include "analog/sigma_delta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::analog {

using util::Rng;
using util::Volts;

SigmaDeltaModulator::SigmaDeltaModulator(const SigmaDeltaSpec& spec, Rng rng)
    : spec_(spec), rng_(rng), initial_rng_(rng) {
  if (spec.full_scale.value() <= 0.0)
    throw std::invalid_argument("SigmaDeltaModulator: bad full scale");
}

int SigmaDeltaModulator::step(Volts input) {
  const double fs = spec_.full_scale.value();
  double u = input.value() / fs;  // normalise to ±1
  overloaded_ = std::abs(u) > 0.9;
  u = std::clamp(u, -1.0, 1.0);
  u += rng_.gaussian(0.0, spec_.dither_lsb);

  const double fb = static_cast<double>(prev_bit_);
  const double leak = 1.0 - spec_.integrator_leak;
  // Boser-Wooley 2nd-order loop, 0.5/0.5 integrator gains (stable to ~0.9 FS).
  s1_ = leak * s1_ + 0.5 * (u - fb);
  s1_ = std::clamp(s1_, -spec_.integrator_saturation, spec_.integrator_saturation);
  s2_ = leak * s2_ + 0.5 * (s1_ - fb);
  s2_ = std::clamp(s2_, -spec_.integrator_saturation, spec_.integrator_saturation);

  prev_bit_ = (s2_ >= 0.0) ? 1 : -1;
  return prev_bit_;
}

SigmaDeltaModulator::BlockKernel SigmaDeltaModulator::begin_block() const {
  return BlockKernel{spec_.full_scale.value(),
                     1.0 - spec_.integrator_leak,
                     spec_.integrator_saturation,
                     s1_,
                     s2_,
                     static_cast<double>(prev_bit_),
                     overloaded_,
                     false};
}

void SigmaDeltaModulator::commit_block(const BlockKernel& k) {
  s1_ = k.s1;
  s2_ = k.s2;
  prev_bit_ = (k.fb >= 0.0) ? 1 : -1;
  overloaded_ = k.last_overload;
}

void SigmaDeltaModulator::fill_dither(std::span<double> out) {
  DitherKernel k = begin_dither_block();
  for (double& x : out) x = k.draw();
  commit_dither_block(k);
}

bool SigmaDeltaModulator::process_block(std::span<const double> in_volts,
                                        std::span<double> bits) {
  if (bits.size() < in_volts.size())
    throw std::invalid_argument("SigmaDeltaModulator: bit block too small");
  const double dither = spec_.dither_lsb;
  BlockKernel k = begin_block();
  for (std::size_t i = 0; i < in_volts.size(); ++i)
    bits[i] = k.step(in_volts[i], rng_.gaussian(0.0, dither));
  commit_block(k);
  return k.any_overload;
}

void SigmaDeltaModulator::reset() {
  s1_ = s2_ = 0.0;
  prev_bit_ = 1;
  overloaded_ = false;
  // Rewind the dither stream too — without this a reset modulator produces a
  // different bitstream than a freshly constructed one and replay diverges.
  rng_ = initial_rng_;
}

}  // namespace aqua::analog
