#include "analog/rc_filter.hpp"

#include <stdexcept>

namespace aqua::analog {

using util::Hertz;
using util::Seconds;

RcLowpass::RcLowpass(Hertz fc, int poles) : fc_(fc) {
  if (fc.value() <= 0.0) throw std::invalid_argument("RcLowpass: bad cutoff");
  if (poles < 1 || poles > 4)
    throw std::invalid_argument("RcLowpass: poles out of range [1,4]");
  const Seconds tau{1.0 / (2.0 * 3.14159265358979323846 * fc.value())};
  for (int i = 0; i < poles; ++i) stages_.emplace_back(0.0, tau);
}

double RcLowpass::step(double input, Seconds dt) {
  double x = input;
  for (auto& s : stages_) x = s.step(x, dt);
  return x;
}

void RcLowpass::process_block(std::span<double> inout, Seconds dt) {
  for (auto& s : stages_) {
    const double a = s.decay(dt);
    for (double& x : inout) x = s.step_with_decay(x, a);
  }
}

RcLowpass::BlockKernel RcLowpass::begin_block(Seconds dt) const {
  BlockKernel k;
  k.poles = static_cast<int>(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    k.a[i] = stages_[i].decay(dt);
    k.y[i] = stages_[i].value();
  }
  return k;
}

void RcLowpass::commit_block(const BlockKernel& k) {
  for (std::size_t i = 0; i < stages_.size(); ++i) stages_[i].reset(k.y[i]);
}

void RcLowpass::reset(double value) {
  for (auto& s : stages_) s.reset(value);
}

double RcLowpass::value() const { return stages_.back().value(); }

}  // namespace aqua::analog
