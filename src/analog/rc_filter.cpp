#include "analog/rc_filter.hpp"

#include <stdexcept>

namespace aqua::analog {

using util::Hertz;
using util::Seconds;

RcLowpass::RcLowpass(Hertz fc, int poles) : fc_(fc) {
  if (fc.value() <= 0.0) throw std::invalid_argument("RcLowpass: bad cutoff");
  if (poles < 1 || poles > 4)
    throw std::invalid_argument("RcLowpass: poles out of range [1,4]");
  const Seconds tau{1.0 / (2.0 * 3.14159265358979323846 * fc.value())};
  for (int i = 0; i < poles; ++i) stages_.emplace_back(0.0, tau);
}

double RcLowpass::step(double input, Seconds dt) {
  double x = input;
  for (auto& s : stages_) x = s.step(x, dt);
  return x;
}

void RcLowpass::reset(double value) {
  for (auto& s : stages_) s.reset(value);
}

double RcLowpass::value() const { return stages_.back().value(); }

}  // namespace aqua::analog
