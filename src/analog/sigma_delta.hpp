// sigma_delta.hpp — discrete-time 2nd-order single-bit ΣΔ modulator, the core
// of the ISIF channel's "16 bits Sigma Delta ADC" (paper §3, Fig. 4). The
// modulator runs at the oversampled clock; a dsp::CicDecimator downstream
// recovers the multi-bit word. The structure is the standard Boser-Wooley
// loop: two delaying integrators with feedback coefficients 1 and 2, a 1-bit
// quantiser, and a small dither injection to break idle tones.
#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::analog {

struct SigmaDeltaSpec {
  util::Volts full_scale = util::volts(1.6);  ///< ±FS differential input
  double dither_lsb = 1e-4;                   ///< dither sigma relative to FS
  double integrator_leak = 0.0;               ///< per-sample leak (finite op-amp gain)
  double integrator_saturation = 4.0;         ///< clip level, in FS units
};

class SigmaDeltaModulator {
 public:
  SigmaDeltaModulator(const SigmaDeltaSpec& spec, util::Rng rng);

  /// One modulator clock: input in volts, output ±1 bitstream value.
  int step(util::Volts input);

  void reset();
  [[nodiscard]] const SigmaDeltaSpec& spec() const { return spec_; }
  /// True if the most recent input exceeded the stable input range (~±0.9 FS
  /// for a 2nd-order loop); the channel flags this as overload.
  [[nodiscard]] bool overloaded() const { return overloaded_; }

 private:
  SigmaDeltaSpec spec_;
  util::Rng rng_;
  util::Rng initial_rng_;
  double s1_ = 0.0;
  double s2_ = 0.0;
  int prev_bit_ = 1;
  bool overloaded_ = false;
};

}  // namespace aqua::analog
