// sigma_delta.hpp — discrete-time 2nd-order single-bit ΣΔ modulator, the core
// of the ISIF channel's "16 bits Sigma Delta ADC" (paper §3, Fig. 4). The
// modulator runs at the oversampled clock; a dsp::CicDecimator downstream
// recovers the multi-bit word. The structure is the standard Boser-Wooley
// loop: two delaying integrators with feedback coefficients 1 and 2, a 1-bit
// quantiser, and a small dither injection to break idle tones.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "state/rng_io.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::analog {

struct SigmaDeltaSpec {
  util::Volts full_scale = util::volts(1.6);  ///< ±FS differential input
  double dither_lsb = 1e-4;                   ///< dither sigma relative to FS
  double integrator_leak = 0.0;               ///< per-sample leak (finite op-amp gain)
  double integrator_saturation = 4.0;         ///< clip level, in FS units
};

class SigmaDeltaModulator {
 public:
  SigmaDeltaModulator(const SigmaDeltaSpec& spec, util::Rng rng);

  /// One modulator clock: input in volts, output ±1 bitstream value.
  int step(util::Volts input);

  /// Block execution: modulates in.size() samples (volts) into ±1.0 bits
  /// ready for the CIC, keeping the loop state in registers across the block.
  /// Bit-identical to in.size() step() calls (same dither draw per sample,
  /// same FP order). Returns true if ANY sample in the block overloaded the
  /// stable input range — the per-block latch the channel needs; overloaded()
  /// afterwards reports the LAST sample, exactly as after scalar stepping.
  bool process_block(std::span<const double> in_volts, std::span<double> bits);

  /// Register-resident per-block state for fused frame kernels (DESIGN.md
  /// §9). step() takes the sample's pre-drawn dither value (fill_dither) and
  /// performs the identical FP operations, in the identical order, as the
  /// scalar step(); it returns the ±1.0 bit.
  struct BlockKernel {
    double fs, leak, sat, s1, s2, fb;
    bool last_overload, any_overload;
    double step(double volts, double dither) {
      double u = volts / fs;
      last_overload = std::abs(u) > 0.9;
      any_overload = any_overload || last_overload;
      u = std::clamp(u, -1.0, 1.0);
      u += dither;
      s1 = leak * s1 + 0.5 * (u - fb);
      s1 = std::clamp(s1, -sat, sat);
      s2 = leak * s2 + 0.5 * (s1 - fb);
      s2 = std::clamp(s2, -sat, sat);
      fb = (s2 >= 0.0) ? 1.0 : -1.0;
      return fb;
    }
  };
  [[nodiscard]] BlockKernel begin_block() const;
  void commit_block(const BlockKernel& k);
  /// Batched dither draws: exactly the values out.size() step() calls would
  /// add, drawn in order from the modulator's own stream.
  void fill_dither(std::span<double> out);

  /// Draw kernel for fully fused frame loops: the dither stream as
  /// register-resident state (DESIGN.md §9).
  struct DitherKernel {
    util::Rng rng;
    double dither;
    double draw() { return rng.gaussian(0.0, dither); }
  };
  [[nodiscard]] DitherKernel begin_dither_block() const {
    return {rng_, spec_.dither_lsb};
  }
  void commit_dither_block(const DitherKernel& k) { rng_ = k.rng; }

  void reset();

  /// Checkpoint support: integrators, feedback bit, overload flag and the
  /// dither stream position.
  void save_state(state::Writer& w) const {
    state::save_rng(w, rng_);
    w.f64(s1_);
    w.f64(s2_);
    w.i32(prev_bit_);
    w.boolean(overloaded_);
  }
  void load_state(state::Reader& r) {
    state::load_rng(r, rng_);
    s1_ = r.f64();
    s2_ = r.f64();
    prev_bit_ = r.i32();
    overloaded_ = r.boolean();
  }

  [[nodiscard]] const SigmaDeltaSpec& spec() const { return spec_; }
  /// True if the most recent input exceeded the stable input range (~±0.9 FS
  /// for a 2nd-order loop); the channel flags this as overload.
  [[nodiscard]] bool overloaded() const { return overloaded_; }

 private:
  SigmaDeltaSpec spec_;
  util::Rng rng_;
  util::Rng initial_rng_;
  double s1_ = 0.0;
  double s2_ = 0.0;
  int prev_bit_ = 1;
  bool overloaded_ = false;
};

}  // namespace aqua::analog
