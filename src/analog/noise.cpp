#include "analog/noise.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace aqua::analog {

using util::Hertz;
using util::Kelvin;
using util::Ohms;
using util::Rng;

WhiteNoise::WhiteNoise(double density, Hertz sample_rate, Rng rng)
    : sigma_(density * std::sqrt(0.5 * sample_rate.value())),
      rng_(rng),
      initial_rng_(rng) {
  if (density < 0.0 || sample_rate.value() <= 0.0)
    throw std::invalid_argument("WhiteNoise: bad parameters");
}

double WhiteNoise::sample() { return rng_.gaussian(0.0, sigma_); }

void WhiteNoise::fill(std::span<double> out) {
  BlockKernel k = begin_block();
  for (double& x : out) x = k.draw();
  commit_block(k);
}

void WhiteNoise::reset() { rng_ = initial_rng_; }

FlickerNoise::FlickerNoise(double density_at_corner, Hertz corner,
                           Hertz sample_rate, Rng rng)
    : rng_(rng) {
  if (density_at_corner < 0.0 || corner.value() <= 0.0 ||
      sample_rate.value() <= 0.0)
    throw std::invalid_argument("FlickerNoise: bad parameters");
  // Voss-McCartney with kRows rows has a per-row variance contribution; the
  // empirical density of the unit-variance generator at frequency f is
  // ~1/sqrt(f/fs · kRows). Calibrate so density(corner) matches the spec.
  const double unit_density_at_corner =
      1.0 / std::sqrt(corner.value() / sample_rate.value() * kRows);
  scale_ = density_at_corner * std::sqrt(sample_rate.value()) /
           (unit_density_at_corner * std::sqrt(sample_rate.value()));
  // The two sqrt(fs) factors cancel; kept explicit for clarity of derivation.
  for (auto& r : rows_) r = rng_.gaussian();
  initial_rows_ = rows_;
  initial_rng_ = rng_;
}

void FlickerNoise::reset() {
  rows_ = initial_rows_;
  counter_ = 0;
  rng_ = initial_rng_;
}

double FlickerNoise::sample() {
  ++counter_;
  // Update the row selected by the number of trailing zeros of the counter.
  const int row = std::countr_zero(counter_) % kRows;
  rows_[static_cast<std::size_t>(row)] = rng_.gaussian();
  // Chain order is high row -> low row. The frequently-updated low rows sit at
  // the tail of the chain, which lets fill() resume a cached partial sum; the
  // scalar path just walks the whole chain. Both paths add in this exact
  // order, so they are bit-identical.
  double acc = 0.0;
  for (int j = kRows - 1; j >= 0; --j) acc += rows_[static_cast<std::size_t>(j)];
  return scale_ * acc / std::sqrt(static_cast<double>(kRows));
}

void FlickerNoise::fill(std::span<double> out) {
  BlockKernel k = begin_block();
  for (double& x : out) x = k.draw();
  commit_block(k);
}

double thermal_noise_density(Ohms resistance, Kelvin t) {
  if (resistance.value() < 0.0 || t.value() <= 0.0)
    throw std::invalid_argument("thermal_noise_density: bad parameters");
  constexpr double kBoltzmann = 1.380649e-23;
  return std::sqrt(4.0 * kBoltzmann * t.value() * resistance.value());
}

}  // namespace aqua::analog
