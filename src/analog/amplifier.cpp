#include "analog/amplifier.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::analog {

using util::Hertz;
using util::Kelvin;
using util::Rng;
using util::Seconds;
using util::Volts;

InstrumentAmp::InstrumentAmp(const InstrumentAmpSpec& spec, Hertz sample_rate,
                             Rng rng)
    : spec_(spec),
      offset_(Volts{rng.gaussian(0.0, spec.offset_sigma.value())}),
      white_(spec.noise_density, sample_rate, rng.split()),
      flicker_(spec.flicker_density_1hz, util::hertz(1.0), sample_rate,
               rng.split()),
      pole_(0.0, Seconds{1.0 / (2.0 * 3.14159265358979323846 *
                                spec.bandwidth.value())}) {
  if (spec.gain <= 0.0) throw std::invalid_argument("InstrumentAmp: bad gain");
}

double InstrumentAmp::step(Volts differential_input, Seconds dt,
                           Kelvin ambient) {
  const double drift =
      spec_.offset_drift_per_k * (ambient.value() - util::celsius(25.0).value());
  const double input = differential_input.value() + offset_.value() + drift +
                       white_.sample() + flicker_.sample();
  const double ideal = spec_.gain * input;
  const double band_limited = pole_.step(ideal, dt);
  const double half_rail = 0.5 * spec_.rail.value();
  saturated_ = std::abs(band_limited) > half_rail;
  return std::clamp(band_limited, -half_rail, half_rail);
}

void InstrumentAmp::reset() {
  white_.reset();
  flicker_.reset();
  pole_.reset(0.0);
  saturated_ = false;
}

void InstrumentAmp::set_gain(double gain) {
  if (gain <= 0.0) throw std::invalid_argument("InstrumentAmp: bad gain");
  spec_.gain = gain;
}

}  // namespace aqua::analog
