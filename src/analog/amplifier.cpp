#include "analog/amplifier.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::analog {

using util::Hertz;
using util::Kelvin;
using util::Rng;
using util::Seconds;
using util::Volts;

InstrumentAmp::InstrumentAmp(const InstrumentAmpSpec& spec, Hertz sample_rate,
                             Rng rng)
    : spec_(spec),
      offset_(Volts{rng.gaussian(0.0, spec.offset_sigma.value())}),
      white_(spec.noise_density, sample_rate, rng.split()),
      flicker_(spec.flicker_density_1hz, util::hertz(1.0), sample_rate,
               rng.split()),
      pole_(0.0, Seconds{1.0 / (2.0 * 3.14159265358979323846 *
                                spec.bandwidth.value())}) {
  if (spec.gain <= 0.0) throw std::invalid_argument("InstrumentAmp: bad gain");
}

double InstrumentAmp::step(Volts differential_input, Seconds dt,
                           Kelvin ambient) {
  const double drift =
      spec_.offset_drift_per_k * (ambient.value() - util::celsius(25.0).value());
  const double input = differential_input.value() + offset_.value() + drift +
                       white_.sample() + flicker_.sample();
  const double ideal = spec_.gain * input;
  const double band_limited = pole_.step(ideal, dt);
  const double half_rail = 0.5 * spec_.rail.value();
  saturated_ = std::abs(band_limited) > half_rail;
  return std::clamp(band_limited, -half_rail, half_rail);
}

InstrumentAmp::BlockKernel InstrumentAmp::begin_block(Seconds dt,
                                                      Kelvin ambient) const {
  const double drift =
      spec_.offset_drift_per_k * (ambient.value() - util::celsius(25.0).value());
  return BlockKernel{offset_.value(), drift,        spec_.gain,
                     0.5 * spec_.rail.value(),      pole_.decay(dt),
                     pole_.value(),                 saturated_};
}

void InstrumentAmp::commit_block(const BlockKernel& k) {
  pole_.reset(k.y);
  saturated_ = k.saturated;
}

void InstrumentAmp::fill_noise(std::span<double> white,
                               std::span<double> flicker) {
  // Each noise source owns an independent stream, so draining n draws from
  // one before the other leaves both streams exactly where n interleaved
  // step() calls would (DESIGN.md §9).
  white_.fill(white);
  flicker_.fill(flicker);
}

void InstrumentAmp::process_block(std::span<const double> in,
                                  std::span<double> out, Seconds dt,
                                  Kelvin ambient) {
  if (out.size() < in.size())
    throw std::invalid_argument("InstrumentAmp: output block too small");
  const std::size_t n = in.size();
  if (white_scratch_.size() < n) {
    white_scratch_.resize(n);
    flicker_scratch_.resize(n);
  }
  fill_noise(std::span<double>{white_scratch_.data(), n},
             std::span<double>{flicker_scratch_.data(), n});
  BlockKernel k = begin_block(dt, ambient);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = k.step(in[i], white_scratch_[i], flicker_scratch_[i]);
  commit_block(k);
}

void InstrumentAmp::reset() {
  white_.reset();
  flicker_.reset();
  pole_.reset(0.0);
  saturated_ = false;
}

void InstrumentAmp::set_gain(double gain) {
  if (gain <= 0.0) throw std::invalid_argument("InstrumentAmp: bad gain");
  spec_.gain = gain;
}

}  // namespace aqua::analog
