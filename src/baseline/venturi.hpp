// venturi.hpp — differential-pressure (Venturi) flowmeter model: the
// *intrusive* meter class the paper's introduction argues against ("some
// sensors perform flow detection through a pressure variation in the
// measuring line obtained with porous sections or different section size in
// the line (Venturi effect) ... All above mentioned sensors perform an
// intrusive measurement ... e.g. a pressure loss").
//
// Physics: Δp = ρ/2 · v_throat² − ρ/2 · v² with v_throat = v/β²; inverted
// through the discharge coefficient. The square-root transfer makes low-flow
// resolution collapse (Δp ∝ v²), and the device permanently dissipates a
// fraction of the differential — both properties the comparison experiment
// surfaces.
#pragma once

#include "baseline/meter.hpp"
#include "sim/integrator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::baseline {

struct VenturiSpec {
  util::Metres bore = util::millimetres(80.0);
  double beta = 0.6;                    ///< throat/bore diameter ratio
  double discharge_coefficient = 0.98;  ///< ISO-5167-class venturi
  /// Differential-pressure transducer: full scale and noise/resolution.
  /// (Must cover the throat differential at full-scale velocity: ~0.22 bar.)
  util::Pascals dp_full_scale = util::bar(0.25);
  double dp_noise_pa = 12.0;            ///< rms sensor + ADC noise
  util::Seconds response = util::Seconds{0.3};
  /// Unrecovered fraction of the throat differential (diffuser loss).
  double permanent_loss_fraction = 0.15;
  util::MetresPerSecond full_scale = util::metres_per_second(2.5);
  double relative_cost = 4.0;
};

class VenturiMeter final : public FlowMeter {
 public:
  VenturiMeter(const VenturiSpec& spec, util::Rng rng);

  util::MetresPerSecond step(util::MetresPerSecond true_velocity,
                             util::Seconds dt) override;

  [[nodiscard]] const MeterSpec& meter_spec() const override { return record_; }
  [[nodiscard]] const VenturiSpec& spec() const { return spec_; }

  /// Ideal throat differential for a given pipe velocity (Pa).
  [[nodiscard]] util::Pascals differential(util::MetresPerSecond v) const;

  /// Permanent head loss the meter inflicts on the line at velocity v.
  [[nodiscard]] util::Pascals permanent_loss(util::MetresPerSecond v) const;

  /// Velocity below which the dp-noise floor exceeds the signal (the
  /// low-flow blindness of Δp meters).
  [[nodiscard]] util::MetresPerSecond noise_floor_velocity() const;

 private:
  VenturiSpec spec_;
  MeterSpec record_;
  util::Rng rng_;
  sim::FirstOrderLag damping_;
};

}  // namespace aqua::baseline
