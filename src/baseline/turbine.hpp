// turbine.hpp — turbine-wheel flowmeter model (the class the paper says its
// prototype matches in accuracy "with cost reduction and improved reliability
// since no mechanical moving parts are exposed in water"; also [5] in the
// paper's references). Rotor dynamics: fluid torque ∝ (v − rω)·v, opposed by
// bearing friction (static + viscous). Below a cutoff velocity the static
// friction stalls the wheel — the classic low-flow failure of turbine meters.
// Output is a pulse rate: K-factor pulses per unit volume. Bearing wear
// accumulates with rotor revolutions and raises friction over life.
#pragma once

#include "baseline/meter.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::baseline {

struct TurbineSpec {
  util::Metres bore = util::millimetres(80.0);
  double rotor_radius_m = 0.03;
  double rotor_inertia = 2e-5;         ///< kg·m²
  double blade_gain = 0.8;             ///< rω/v at equilibrium, no friction
  double fluid_torque_coeff = 4e-3;    ///< N·m per (m/s)² of slip·speed
  double static_friction_nm = 4e-5;    ///< bearing breakaway torque
  double viscous_friction = 1e-6;      ///< N·m·s/rad
  double k_factor_pulses_per_rev = 12.0;
  double resolution_percent_fs = 1.5;  ///< typical utility turbine
  double relative_cost = 3.0;
  util::MetresPerSecond full_scale = util::metres_per_second(2.5);
  double wear_per_megarev = 0.05;      ///< fractional friction growth / 1e6 rev
};

class TurbineMeter final : public FlowMeter {
 public:
  TurbineMeter(const TurbineSpec& spec, util::Rng rng);

  util::MetresPerSecond step(util::MetresPerSecond true_velocity,
                             util::Seconds dt) override;

  [[nodiscard]] const MeterSpec& meter_spec() const override { return record_; }
  [[nodiscard]] const TurbineSpec& spec() const { return spec_; }

  [[nodiscard]] double rotor_speed_rad_s() const { return omega_; }
  [[nodiscard]] bool stalled() const;
  [[nodiscard]] double total_revolutions() const { return revolutions_; }
  /// Wear-induced friction multiplier (1 when new).
  [[nodiscard]] double wear_factor() const;
  /// Velocity below which a new meter's rotor cannot break away.
  [[nodiscard]] util::MetresPerSecond stall_velocity() const;

 private:
  TurbineSpec spec_;
  MeterSpec record_;
  util::Rng rng_;
  double omega_ = 0.0;        // rad/s
  double revolutions_ = 0.0;  // lifetime accumulator
};

}  // namespace aqua::baseline
