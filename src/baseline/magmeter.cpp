#include "baseline/magmeter.hpp"

#include <cmath>

namespace aqua::baseline {

using util::MetresPerSecond;
using util::Seconds;
using util::Volts;

MagMeter::MagMeter(const MagMeterSpec& spec, util::Rng rng)
    : spec_(spec),
      record_{"magmeter (Promag-50 class)", spec.resolution_percent_fs,
              spec.relative_cost, /*moving_parts=*/false, /*intrusive=*/true,
              spec.response},
      rng_(rng),
      damping_(0.0, spec.response) {}

Volts MagMeter::emf(MetresPerSecond v) const {
  // U = B·D·v (k = 1 for a uniform field model).
  return Volts{spec_.field_tesla * spec_.bore.value() * v.value()};
}

MetresPerSecond MagMeter::step(MetresPerSecond true_velocity, Seconds dt) {
  accumulated_time_ += dt.value();
  time_since_update_ += dt.value();

  // Electrode offset performs a slow random walk (electrochemistry); the
  // pulsed-DC excitation chops most of it away — model the residual.
  electrode_offset_v_ +=
      rng_.gaussian(0.0, spec_.electrode_drift_uv_per_s * 1e-6 * dt.value());

  const double period = 1.0 / spec_.excitation.value();
  if (time_since_update_ >= period) {
    time_since_update_ = 0.0;
    const double u = emf(true_velocity).value() + electrode_offset_v_;
    // Datasheet resolution as the per-reading noise floor (% of FS).
    const double sigma_v =
        spec_.resolution_percent_fs / 100.0 * spec_.full_scale.value() / 3.0;
    const double v_raw =
        u / (spec_.field_tesla * spec_.bore.value()) + rng_.gaussian(0.0, sigma_v);
    last_output_mps_ = damping_.step(v_raw, Seconds{period});
  }
  return MetresPerSecond{last_output_mps_};
}

}  // namespace aqua::baseline
