// meter.hpp — common interface and datasheet record for the flow meters the
// evaluation compares (paper §5): the MEMS hot-wire prototype, the
// Endress+Hauser Promag-50-class electromagnetic reference, and a
// turbine-wheel meter. The MeterSpec record carries the comparison axes the
// paper argues on: resolution, cost, moving parts, intrusiveness.
#pragma once

#include <string>

#include "util/units.hpp"

namespace aqua::baseline {

/// A meter's datasheet-level comparison record.
struct MeterSpec {
  std::string name;
  double resolution_percent_fs;   ///< ± resolution as % of full scale
  double relative_cost;           ///< cost index, MEMS prototype = 1
  bool moving_parts;
  bool intrusive;                 ///< perturbs the flow / needs line works
  util::Seconds response_time;    ///< to 90 % of a step
};

/// Runtime interface: meters sample the line's mean velocity and return their
/// (imperfect) reading.
class FlowMeter {
 public:
  virtual ~FlowMeter() = default;

  /// Advances the meter by dt with the true mean line velocity and returns
  /// the instantaneous reading.
  virtual util::MetresPerSecond step(util::MetresPerSecond true_velocity,
                                     util::Seconds dt) = 0;

  [[nodiscard]] virtual const MeterSpec& meter_spec() const = 0;
};

}  // namespace aqua::baseline
