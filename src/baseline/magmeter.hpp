// magmeter.hpp — electromagnetic flowmeter model of the Promag-50 class used
// as the campaign reference (paper §4–§5). Faraday's law: the EMF across the
// electrodes is U = k·B·D·v̄, directly proportional to the area-mean velocity
// and independent of the profile (for an axisymmetric profile). Modelled
// error budget: electrode offset drift, white EMF noise, excitation-frequency
// output cadence, ADC quantisation, and the ±0.5 % FS datasheet resolution
// the paper quotes.
#pragma once

#include "baseline/meter.hpp"
#include "sim/integrator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::baseline {

struct MagMeterSpec {
  util::Metres bore = util::millimetres(80.0);
  double field_tesla = 5e-3;                   ///< pulsed-DC coil field
  util::MetresPerSecond full_scale = util::metres_per_second(2.5);
  double resolution_percent_fs = 0.5;          ///< the paper's "< ±0.5 % FS"
  util::Hertz excitation = util::hertz(12.5);  ///< output update cadence
  util::Seconds response = util::Seconds{0.5}; ///< damping/filter
  double electrode_drift_uv_per_s = 0.02;      ///< slow electrochemical drift
  double relative_cost = 12.0;                 ///< ≥ one order of magnitude
};

class MagMeter final : public FlowMeter {
 public:
  MagMeter(const MagMeterSpec& spec, util::Rng rng);

  util::MetresPerSecond step(util::MetresPerSecond true_velocity,
                             util::Seconds dt) override;

  [[nodiscard]] const MeterSpec& meter_spec() const override { return record_; }
  [[nodiscard]] const MagMeterSpec& spec() const { return spec_; }

  /// Electrode EMF for a given velocity (diagnostics/tests).
  [[nodiscard]] util::Volts emf(util::MetresPerSecond v) const;

 private:
  MagMeterSpec spec_;
  MeterSpec record_;
  util::Rng rng_;
  sim::FirstOrderLag damping_;
  double electrode_offset_v_ = 0.0;
  double accumulated_time_ = 0.0;
  double last_output_mps_ = 0.0;
  double time_since_update_ = 0.0;
};

}  // namespace aqua::baseline
