#include "baseline/venturi.hpp"

#include <algorithm>
#include <cmath>

#include "phys/fluid.hpp"

namespace aqua::baseline {

using util::MetresPerSecond;
using util::Pascals;
using util::Seconds;

namespace {
constexpr double kWaterDensity = 999.1;  // 15 °C design density
}

VenturiMeter::VenturiMeter(const VenturiSpec& spec, util::Rng rng)
    : spec_(spec),
      record_{"venturi dP meter", 0.0, spec.relative_cost,
              /*moving_parts=*/false, /*intrusive=*/true, spec.response},
      rng_(rng),
      damping_(0.0, spec.response) {
  // Datasheet-style resolution: dp noise referred to full-scale velocity.
  const double dp_fs = differential(spec.full_scale).value();
  record_.resolution_percent_fs =
      100.0 * 0.5 * spec.dp_noise_pa / dp_fs;  // dv/v = 0.5·ddp/dp at FS
}

Pascals VenturiMeter::differential(MetresPerSecond v) const {
  const double beta2 = spec_.beta * spec_.beta;
  const double vt = v.value() / beta2;  // throat velocity (continuity)
  const double c = spec_.discharge_coefficient;
  return Pascals{0.5 * kWaterDensity * (vt * vt - v.value() * v.value()) /
                 (c * c)};
}

Pascals VenturiMeter::permanent_loss(MetresPerSecond v) const {
  return Pascals{spec_.permanent_loss_fraction *
                 std::abs(differential(v).value())};
}

MetresPerSecond VenturiMeter::noise_floor_velocity() const {
  // differential(v) = noise: v² scaling inverted.
  const double k = differential(MetresPerSecond{1.0}).value();
  return MetresPerSecond{std::sqrt(spec_.dp_noise_pa / k)};
}

MetresPerSecond VenturiMeter::step(MetresPerSecond true_velocity, Seconds dt) {
  const double sign = true_velocity.value() >= 0.0 ? 1.0 : -1.0;
  double dp = differential(MetresPerSecond{std::abs(true_velocity.value())})
                  .value() +
              rng_.gaussian(0.0, spec_.dp_noise_pa);
  dp = std::clamp(dp, 0.0, spec_.dp_full_scale.value());
  // Invert the square law.
  const double k = differential(MetresPerSecond{1.0}).value();
  const double v_raw = std::sqrt(dp / k);
  return MetresPerSecond{sign * damping_.step(v_raw, dt)};
}

}  // namespace aqua::baseline
