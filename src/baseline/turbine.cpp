#include "baseline/turbine.hpp"

#include <algorithm>
#include <cmath>

namespace aqua::baseline {

using util::MetresPerSecond;
using util::Seconds;

TurbineMeter::TurbineMeter(const TurbineSpec& spec, util::Rng rng)
    : spec_(spec),
      record_{"turbine wheel", spec.resolution_percent_fs, spec.relative_cost,
              /*moving_parts=*/true, /*intrusive=*/true, util::Seconds{0.2}},
      rng_(rng) {}

double TurbineMeter::wear_factor() const {
  return 1.0 + spec_.wear_per_megarev * revolutions_ / 1e6;
}

MetresPerSecond TurbineMeter::stall_velocity() const {
  // Breakaway: fluid torque at ω=0 equals static friction.
  return MetresPerSecond{std::sqrt(
      spec_.static_friction_nm * wear_factor() /
      (spec_.fluid_torque_coeff * spec_.blade_gain))};
}

MetresPerSecond TurbineMeter::step(MetresPerSecond true_velocity, Seconds dt) {
  const double v = true_velocity.value();
  const double r = spec_.rotor_radius_m;
  const double fric = wear_factor();

  const double t_fluid =
      spec_.fluid_torque_coeff * std::abs(v) * (spec_.blade_gain * v - omega_ * r);
  const double t_static = spec_.static_friction_nm * fric;

  if (std::abs(omega_) < 1e-3 && std::abs(t_fluid) <= t_static) {
    omega_ = 0.0;  // stalled: breakaway torque not reached
  } else {
    const double t_fric =
        (omega_ >= 0.0 ? 1.0 : -1.0) * t_static +
        spec_.viscous_friction * fric * omega_;
    const double domega = (t_fluid - t_fric) / spec_.rotor_inertia;
    omega_ += domega * dt.value();
    // Friction cannot reverse the rotor through zero within a step.
    if ((omega_ > 0.0) != (spec_.blade_gain * v - 0.0 > 0.0) &&
        std::abs(spec_.blade_gain * v) < 1e-6)
      omega_ = 0.0;
  }
  revolutions_ += std::abs(omega_) * dt.value() / (2.0 * 3.14159265358979);

  // Pulse-counting readout: quantised to whole pulses per gate interval, plus
  // a little jitter from blade passing irregularity.
  const double v_ideal = omega_ * r / spec_.blade_gain;
  const double pulse_noise = rng_.gaussian(0.0, 0.002 * spec_.full_scale.value());
  return MetresPerSecond{v_ideal + (omega_ != 0.0 ? pulse_noise : 0.0)};
}

bool TurbineMeter::stalled() const { return omega_ == 0.0; }

}  // namespace aqua::baseline
