// barrier.hpp — reusable epoch barrier for persistent-worker execution.
//
// The fleet engine's parallel epoch loop parks one long-lived task on every
// pool worker and releases them once per epoch (DESIGN.md §12). That pattern
// needs a rendezvous all participants cross together, generation after
// generation — this class. It is a classic sense-reversing barrier built on a
// mutex + condition variable: correct under TSan, immune to spurious wakeups,
// and cheap relative to an epoch (two lock/unlock pairs per participant per
// crossing, microseconds against the milliseconds a shard of sensors costs).
//
// The mutex also carries the memory ordering the epoch protocol relies on:
// anything a thread wrote before arrive_and_wait() is visible to every other
// participant after their own arrive_and_wait() returns. The caller publishes
// the epoch's frozen network snapshot that way, and the workers publish their
// per-sensor results back the same way.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace aqua::util {

class EpochBarrier {
 public:
  /// A barrier for exactly `participants` threads (>= 1; throws
  /// std::invalid_argument on 0 — a 0-party barrier can never trip).
  explicit EpochBarrier(std::size_t participants);

  EpochBarrier(const EpochBarrier&) = delete;
  EpochBarrier& operator=(const EpochBarrier&) = delete;

  /// Blocks until all participants have arrived, then releases every one of
  /// them and resets for the next generation. Returns the index of the
  /// generation just completed (0 for the first crossing). All participants
  /// of one crossing return the same index.
  std::uint64_t arrive_and_wait();

  [[nodiscard]] std::size_t participants() const { return participants_; }

  /// Generations completed so far (for tests/telemetry; racy by nature while
  /// threads are mid-crossing).
  [[nodiscard]] std::uint64_t generation() const;

 private:
  const std::size_t participants_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace aqua::util
