#include "util/rng.hpp"

namespace aqua::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : s_) word = splitmix64(seed);
  // A state of all zeros is the one forbidden fixed point; splitmix64 cannot
  // produce four consecutive zeros in practice, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::stream(std::uint64_t root_seed, std::uint64_t stream_id) {
  // Murmur3-style finalizer: full-avalanche 64-bit hash, applied twice so the
  // (root, id) pair is mixed through ~128 bits of nonlinearity before the
  // SplitMix64 state expansion in the constructor.
  const auto mix = [](std::uint64_t z) {
    z ^= z >> 33;
    z *= 0xFF51AFD7ED558CCDull;
    z ^= z >> 33;
    z *= 0xC4CEB9FE1A85EC53ull;
    z ^= z >> 33;
    return z;
  };
  return Rng{mix(root_seed ^ mix(stream_id + 0x9E3779B97F4A7C15ull))};
}

}  // namespace aqua::util
