#include "util/rng.hpp"

#include <cmath>

namespace aqua::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& word : s_) word = splitmix64(seed);
  // A state of all zeros is the one forbidden fixed point; splitmix64 cannot
  // produce four consecutive zeros in practice, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * scale;
  has_spare_ = true;
  return u * scale;
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire-style rejection-free-enough bound; n is small in all our uses.
  return next_u64() % n;
}

Rng Rng::split() { return Rng{next_u64()}; }

Rng Rng::stream(std::uint64_t root_seed, std::uint64_t stream_id) {
  // Murmur3-style finalizer: full-avalanche 64-bit hash, applied twice so the
  // (root, id) pair is mixed through ~128 bits of nonlinearity before the
  // SplitMix64 state expansion in the constructor.
  const auto mix = [](std::uint64_t z) {
    z ^= z >> 33;
    z *= 0xFF51AFD7ED558CCDull;
    z ^= z >> 33;
    z *= 0xC4CEB9FE1A85EC53ull;
    z ^= z >> 33;
    return z;
  };
  return Rng{mix(root_seed ^ mix(stream_id + 0x9E3779B97F4A7C15ull))};
}

}  // namespace aqua::util
