// rng.hpp — deterministic random number generation.
//
// Every stochastic element in the library (ΣΔ dither, amplifier noise, resistor
// tolerances, turbulence) draws from an explicitly seeded Rng so that every
// test, example and experiment is bit-reproducible. The generator is
// xoshiro256++ (Blackman & Vigna), small, fast and high quality; `split()`
// derives decorrelated child streams so each subsystem owns its own stream.
#pragma once

#include <array>
#include <cstdint>

namespace aqua::util {

class Rng {
 public:
  /// Seeds the stream from a 64-bit seed via SplitMix64 state expansion.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal draw (polar Box-Muller with cached spare).
  double gaussian();

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Derives an independent child stream; advances this stream.
  Rng split();

  /// Counter-based stream derivation: the `stream_id`-th decorrelated stream
  /// of a root seed, without constructing or advancing any intermediate
  /// generator. Same (root_seed, stream_id) ⇒ same stream, regardless of
  /// construction order or thread — this is the determinism anchor of the
  /// fleet engine (every sensor owns stream k of the fleet's root seed).
  [[nodiscard]] static Rng stream(std::uint64_t root_seed,
                                  std::uint64_t stream_id);

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace aqua::util
