// rng.hpp — deterministic random number generation.
//
// Every stochastic element in the library (ΣΔ dither, amplifier noise, resistor
// tolerances, turbulence) draws from an explicitly seeded Rng so that every
// test, example and experiment is bit-reproducible. The generator is
// xoshiro256++ (Blackman & Vigna), small, fast and high quality; `split()`
// derives decorrelated child streams so each subsystem owns its own stream.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

namespace aqua::util {

class Rng {
 public:
  /// Seeds the stream from a 64-bit seed via SplitMix64 state expansion.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  // The draw primitives are defined inline: they sit on the per-modulator-tick
  // hot path (three gaussians per channel tick), where an out-of-line call per
  // draw is measurable. Inlining changes no values — same algorithm, same
  // stream positions.

  /// Next raw 64-bit draw.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal draw (polar Box-Muller with cached spare).
  double gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double scale = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * scale;
    has_spare_ = true;
    return u * scale;
  }

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire-style rejection-free-enough bound; n is small in all our uses.
    return next_u64() % n;
  }

  /// Derives an independent child stream; advances this stream.
  Rng split() { return Rng{next_u64()}; }

  /// Read-only digest of the generator's exact position: state words plus the
  /// Box-Muller spare. Equal fingerprints ⇒ identical future draw sequences.
  /// The fleet scaling tests use this to prove that shard assignment never
  /// changes any sensor's stream consumption order.
  [[nodiscard]] std::uint64_t fingerprint() const {
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the state
    const auto mix = [&h](std::uint64_t w) {
      h ^= w;
      h *= 0x100000001b3ull;
    };
    for (const std::uint64_t w : s_) mix(w);
    mix(has_spare_ ? std::bit_cast<std::uint64_t>(spare_) | 1ull : 0ull);
    return h;
  }

  /// The generator's complete position: xoshiro state words plus the cached
  /// Box-Muller spare. The cross-sensor SIMD layer (src/simd) gathers this
  /// into structure-of-arrays lanes before a batch frame and scatters the
  /// advanced position back afterwards; round-tripping through State is
  /// exact, so scalar execution can resume a stream the batch path advanced
  /// (and vice versa) without perturbing a single draw.
  struct State {
    std::array<std::uint64_t, 4> s{};
    double spare = 0.0;
    bool has_spare = false;
  };
  [[nodiscard]] State state() const { return State{s_, spare_, has_spare_}; }
  void set_state(const State& state) {
    s_ = state.s;
    spare_ = state.spare;
    has_spare_ = state.has_spare;
  }

  /// Counter-based stream derivation: the `stream_id`-th decorrelated stream
  /// of a root seed, without constructing or advancing any intermediate
  /// generator. Same (root_seed, stream_id) ⇒ same stream, regardless of
  /// construction order or thread — this is the determinism anchor of the
  /// fleet engine (every sensor owns stream k of the fleet's root seed).
  [[nodiscard]] static Rng stream(std::uint64_t root_seed,
                                  std::uint64_t stream_id);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace aqua::util
