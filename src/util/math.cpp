#include "util/math.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::util {

double polyval(std::span<const double> coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

double interp1(std::span<const double> x, std::span<const double> y, double xq) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("interp1: bad knot arrays");
  if (xq <= x.front()) return y.front();
  if (xq >= x.back()) return y.back();
  const auto it = std::upper_bound(x.begin(), x.end(), xq);
  const std::size_t hi = static_cast<std::size_t>(it - x.begin());
  const std::size_t lo = hi - 1;
  const double t = (xq - x[lo]) / (x[hi] - x[lo]);
  return y[lo] + t * (y[hi] - y[lo]);
}

std::vector<double> solve_linear(std::vector<double> a, std::vector<double> b) {
  const std::size_t n = b.size();
  if (a.size() != n * n) throw std::invalid_argument("solve_linear: shape mismatch");
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    if (std::abs(a[pivot * n + col]) < 1e-14)
      throw std::invalid_argument("solve_linear: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[pivot * n + c], a[col * n + c]);
      std::swap(b[pivot], b[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a[r * n + c] * x[c];
    x[r] = acc / a[r * n + r];
  }
  return x;
}

std::vector<double> least_squares(std::span<const double> x_rowmajor,
                                  std::span<const double> y, std::size_t cols) {
  if (cols == 0 || x_rowmajor.size() != y.size() * cols)
    throw std::invalid_argument("least_squares: shape mismatch");
  const std::size_t rows = y.size();
  // Normal equations: (XᵀX) beta = Xᵀy.
  std::vector<double> xtx(cols * cols, 0.0);
  std::vector<double> xty(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = &x_rowmajor[r * cols];
    for (std::size_t i = 0; i < cols; ++i) {
      xty[i] += row[i] * y[r];
      for (std::size_t j = 0; j < cols; ++j) xtx[i * cols + j] += row[i] * row[j];
    }
  }
  return solve_linear(std::move(xtx), std::move(xty));
}

double golden_minimize(const std::function<double(double)>& f, double lo,
                       double hi, double tol) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              double tol) {
  double flo = f(lo), fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0))
    throw std::invalid_argument("bisect: no sign change on interval");
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double remap_clamped(double x, double in_lo, double in_hi, double out_lo,
                     double out_hi) {
  const double t = std::clamp((x - in_lo) / (in_hi - in_lo), 0.0, 1.0);
  return out_lo + t * (out_hi - out_lo);
}

}  // namespace aqua::util
