// units.hpp — compile-time dimensional analysis for the quantities the library
// trades in (SI base dimensions: mass, length, time, current, temperature).
//
// A Quantity stores a double in SI base units and carries its dimension in the
// type. Arithmetic combines dimensions at compile time, so mixing volts with
// metres per second is a build error, not a field failure. Public APIs of the
// library accept/return these strong types; hot inner loops may unwrap with
// .value() where the dimension is locally obvious.
#pragma once

#include <cmath>
#include <compare>

namespace aqua::util {

/// Dimension exponents over SI base units (kg, m, s, A, K).
template <int M, int L, int T, int I, int Th>
struct Dim {
  static constexpr int mass = M;
  static constexpr int length = L;
  static constexpr int time = T;
  static constexpr int current = I;
  static constexpr int temperature = Th;
};

template <class A, class B>
using DimMul = Dim<A::mass + B::mass, A::length + B::length, A::time + B::time,
                   A::current + B::current, A::temperature + B::temperature>;

template <class A, class B>
using DimDiv = Dim<A::mass - B::mass, A::length - B::length, A::time - B::time,
                   A::current - B::current, A::temperature - B::temperature>;

/// A value with compile-time dimension D, stored in coherent SI units.
template <class D>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// The numeric value in coherent SI base units.
  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Quantity operator-() const { return Quantity{-v_}; }
  constexpr Quantity& operator+=(Quantity o) { v_ += o.v_; return *this; }
  constexpr Quantity& operator-=(Quantity o) { v_ -= o.v_; return *this; }
  constexpr Quantity& operator*=(double s) { v_ *= s; return *this; }
  constexpr Quantity& operator/=(double s) { v_ /= s; return *this; }

  friend constexpr Quantity operator+(Quantity a, Quantity b) { return Quantity{a.v_ + b.v_}; }
  friend constexpr Quantity operator-(Quantity a, Quantity b) { return Quantity{a.v_ - b.v_}; }
  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.v_ * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{s * a.v_}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.v_ / s}; }
  friend constexpr double operator/(Quantity a, Quantity b) { return a.v_ / b.v_; }
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double v_ = 0.0;
};

template <class DA, class DB>
constexpr Quantity<DimMul<DA, DB>> operator*(Quantity<DA> a, Quantity<DB> b) {
  return Quantity<DimMul<DA, DB>>{a.value() * b.value()};
}

template <class DA, class DB>
  requires(!std::is_same_v<DA, DB>)
constexpr Quantity<DimDiv<DA, DB>> operator/(Quantity<DA> a, Quantity<DB> b) {
  return Quantity<DimDiv<DA, DB>>{a.value() / b.value()};
}

// --- Dimension aliases -------------------------------------------------------
using DimLess = Dim<0, 0, 0, 0, 0>;
using DimLength = Dim<0, 1, 0, 0, 0>;
using DimTime = Dim<0, 0, 1, 0, 0>;
using DimMass = Dim<1, 0, 0, 0, 0>;
using DimCurrent = Dim<0, 0, 0, 1, 0>;
using DimTemperature = Dim<0, 0, 0, 0, 1>;
using DimVelocity = Dim<0, 1, -1, 0, 0>;
using DimFrequency = Dim<0, 0, -1, 0, 0>;
using DimArea = Dim<0, 2, 0, 0, 0>;
using DimVolume = Dim<0, 3, 0, 0, 0>;
using DimVolumeFlow = Dim<0, 3, -1, 0, 0>;
using DimPressure = Dim<1, -1, -2, 0, 0>;
using DimEnergy = Dim<1, 2, -2, 0, 0>;
using DimPower = Dim<1, 2, -3, 0, 0>;
using DimVoltage = Dim<1, 2, -3, -1, 0>;
using DimResistance = Dim<1, 2, -3, -2, 0>;
using DimCharge = Dim<0, 0, 1, 1, 0>;

// --- Quantity aliases --------------------------------------------------------
using Metres = Quantity<DimLength>;
using Seconds = Quantity<DimTime>;
using Kilograms = Quantity<DimMass>;
using Amperes = Quantity<DimCurrent>;
using Kelvin = Quantity<DimTemperature>;   ///< absolute or difference; see Celsius helpers
using MetresPerSecond = Quantity<DimVelocity>;
using Hertz = Quantity<DimFrequency>;
using SquareMetres = Quantity<DimArea>;
using CubicMetres = Quantity<DimVolume>;
using CubicMetresPerSecond = Quantity<DimVolumeFlow>;
using Pascals = Quantity<DimPressure>;
using Joules = Quantity<DimEnergy>;
using Watts = Quantity<DimPower>;
using Volts = Quantity<DimVoltage>;
using Ohms = Quantity<DimResistance>;
using Coulombs = Quantity<DimCharge>;

// --- Construction helpers ----------------------------------------------------
constexpr Metres metres(double v) { return Metres{v}; }
constexpr Metres millimetres(double v) { return Metres{v * 1e-3}; }
constexpr Metres micrometres(double v) { return Metres{v * 1e-6}; }
constexpr Seconds seconds(double v) { return Seconds{v}; }
constexpr Seconds milliseconds(double v) { return Seconds{v * 1e-3}; }
constexpr Hertz hertz(double v) { return Hertz{v}; }
constexpr Volts volts(double v) { return Volts{v}; }
constexpr Volts millivolts(double v) { return Volts{v * 1e-3}; }
constexpr Amperes amperes(double v) { return Amperes{v}; }
constexpr Amperes milliamperes(double v) { return Amperes{v * 1e-3}; }
constexpr Ohms ohms(double v) { return Ohms{v}; }
constexpr Watts watts(double v) { return Watts{v}; }
constexpr Watts milliwatts(double v) { return Watts{v * 1e-3}; }
constexpr Pascals pascals(double v) { return Pascals{v}; }
constexpr Pascals bar(double v) { return Pascals{v * 1e5}; }
constexpr Kelvin kelvin(double v) { return Kelvin{v}; }
constexpr MetresPerSecond metres_per_second(double v) { return MetresPerSecond{v}; }
constexpr MetresPerSecond centimetres_per_second(double v) { return MetresPerSecond{v * 1e-2}; }

/// Celsius <-> Kelvin conversions for absolute temperatures.
constexpr double kKelvinOffset = 273.15;
constexpr Kelvin celsius(double deg_c) { return Kelvin{deg_c + kKelvinOffset}; }
constexpr double to_celsius(Kelvin t) { return t.value() - kKelvinOffset; }

/// Readout helpers used by experiment reports.
constexpr double to_centimetres_per_second(MetresPerSecond v) { return v.value() * 1e2; }
constexpr double to_bar(Pascals p) { return p.value() * 1e-5; }
constexpr double to_millivolts(Volts v) { return v.value() * 1e3; }

namespace literals {
constexpr Metres operator""_m(long double v) { return Metres{static_cast<double>(v)}; }
constexpr Metres operator""_mm(long double v) { return millimetres(static_cast<double>(v)); }
constexpr Metres operator""_um(long double v) { return micrometres(static_cast<double>(v)); }
constexpr Seconds operator""_s(long double v) { return Seconds{static_cast<double>(v)}; }
constexpr Seconds operator""_ms(long double v) { return milliseconds(static_cast<double>(v)); }
constexpr Hertz operator""_Hz(long double v) { return Hertz{static_cast<double>(v)}; }
constexpr Hertz operator""_kHz(long double v) { return Hertz{static_cast<double>(v) * 1e3}; }
constexpr Volts operator""_V(long double v) { return Volts{static_cast<double>(v)}; }
constexpr Volts operator""_mV(long double v) { return millivolts(static_cast<double>(v)); }
constexpr Ohms operator""_Ohm(long double v) { return Ohms{static_cast<double>(v)}; }
constexpr Watts operator""_W(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_mW(long double v) { return milliwatts(static_cast<double>(v)); }
constexpr Pascals operator""_bar(long double v) { return bar(static_cast<double>(v)); }
constexpr Kelvin operator""_K(long double v) { return Kelvin{static_cast<double>(v)}; }
constexpr Kelvin operator""_degC(long double v) { return celsius(static_cast<double>(v)); }
constexpr MetresPerSecond operator""_mps(long double v) { return MetresPerSecond{static_cast<double>(v)}; }
constexpr MetresPerSecond operator""_cmps(long double v) { return centimetres_per_second(static_cast<double>(v)); }
}  // namespace literals

}  // namespace aqua::util
