// log.hpp — minimal leveled logger for examples and experiment harnesses.
// Deliberately tiny: a global level, a printf-free streaming call site.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace aqua::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Parses a level name ("debug", "info", "warn"/"warning", "error", "off",
/// any case); nullopt when unrecognised. This is the `AQUA_LOG_LEVEL`
/// environment syntax — the variable, when set to a valid name, provides the
/// initial global threshold instead of the kInfo default.
[[nodiscard]] std::optional<LogLevel> log_level_from_string(
    std::string_view text);

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line (with level prefix) to stderr if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  template <class T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream{LogLevel::kDebug}; }
inline detail::LogStream log_info() { return detail::LogStream{LogLevel::kInfo}; }
inline detail::LogStream log_warn() { return detail::LogStream{LogLevel::kWarn}; }
inline detail::LogStream log_error() { return detail::LogStream{LogLevel::kError}; }

}  // namespace aqua::util
