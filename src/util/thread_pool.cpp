#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aqua::util {

namespace {
// Identifies the pool (and worker slot) the current thread belongs to, so
// nested submissions go to the submitter's own queue front.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

// Pool telemetry: tasks executed, successful steals, and the queue depth seen
// by each enqueue (a linear histogram — depth is small and bounded by tasks
// in flight). Scheduling is timing-dependent, so steal counts vary run to
// run; only the simulation output is covered by the determinism contract.
const obs::Counter kTasks{"util.thread_pool.tasks"};
const obs::Counter kSteals{"util.thread_pool.steals"};
const obs::Histogram kQueueDepth{"util.thread_pool.enqueue_queue_depth",
                                 obs::HistogramSpec{0.0, 64.0, 64, false}};
}  // namespace

ThreadPool::ThreadPool(unsigned thread_count) {
  unsigned n = thread_count != 0 ? thread_count
                                 : std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  accepting_.store(false);
  wait_idle();  // drain queued work before stopping
  stop_.store(true);
  {
    std::lock_guard lock{wake_mutex_};
    wake_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

void ThreadPool::enqueue(Task task) {
  if (!accepting_.load())
    throw std::runtime_error("ThreadPool: submit after shutdown began");
  in_flight_.fetch_add(1);
  kQueueDepth.observe(static_cast<double>(queued_.fetch_add(1)));
  if (tl_pool == this) {
    // A worker submitting to its own pool: LIFO front for locality.
    Worker& own = *workers_[tl_worker_index];
    std::lock_guard lock{own.mutex};
    own.queue.push_front(std::move(task));
  } else {
    Worker& target =
        *workers_[next_queue_.fetch_add(1) % workers_.size()];
    std::lock_guard lock{target.mutex};
    target.queue.push_back(std::move(task));
  }
  {
    std::lock_guard lock{wake_mutex_};
    wake_cv_.notify_one();
  }
}

bool ThreadPool::try_pop_local(std::size_t index, Task& out) {
  Worker& own = *workers_[index];
  std::lock_guard lock{own.mutex};
  if (own.queue.empty()) return false;
  out = std::move(own.queue.front());
  own.queue.pop_front();
  queued_.fetch_sub(1);
  return true;
}

bool ThreadPool::try_steal(std::size_t thief, Task& out) {
  const std::size_t n = workers_.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    Worker& victim = *workers_[(thief + hop) % n];
    std::lock_guard lock{victim.mutex};
    if (victim.queue.empty()) continue;
    out = std::move(victim.queue.back());
    victim.queue.pop_back();
    queued_.fetch_sub(1);
    kSteals.add(1);
    AQUA_TRACE_INSTANT("pool.steal");
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker_index = index;
  obs::TraceRecorder::set_thread_name("pool-" + std::to_string(index));
  for (;;) {
    Task task;
    if (try_pop_local(index, task) || try_steal(index, task)) {
      {
        AQUA_TRACE_SPAN("pool.task");
        task();  // packaged_task captures any exception into its future
      }
      kTasks.add(1);
      if (in_flight_.fetch_sub(1) == 1) {
        std::lock_guard lock{wake_mutex_};
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock lock{wake_mutex_};
    if (stop_.load()) return;
    // Race-free: an enqueue between the failed scans and this wait holds
    // wake_mutex_ to notify, so queued_ > 0 cannot be missed.
    wake_cv_.wait(lock, [this] { return stop_.load() || queued_.load() > 0; });
    if (stop_.load()) return;
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock{wake_mutex_};
  idle_cv_.wait(lock, [this] { return in_flight_.load() == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // One task per contiguous block; a few blocks per worker so faster workers
  // can steal the tail.
  const std::size_t blocks = std::min(n, thread_count() * 4);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    futures.push_back(submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace aqua::util
