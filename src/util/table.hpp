// table.hpp — report table builder used by the bench harness: collects typed
// columns, prints an aligned console table (the "rows the paper reports") and
// optionally dumps CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace aqua::util {

class Table {
 public:
  using Cell = std::variant<std::string, double, long long>;

  explicit Table(std::string title = {});

  Table& columns(std::vector<std::string> names);
  Table& precision(int digits);  ///< digits after the decimal point for doubles

  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& column_names() const { return cols_; }

  /// Renders an aligned, boxed console table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (header + rows) to the given path.
  void write_csv(const std::string& path) const;

 private:
  [[nodiscard]] std::string format_cell(const Cell& c) const;

  std::string title_;
  std::vector<std::string> cols_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace aqua::util
