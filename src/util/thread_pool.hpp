// thread_pool.hpp — work-stealing thread pool for fleet-scale co-simulation.
//
// Each worker owns a deque: the owner pushes and pops at the front (LIFO, for
// cache locality on nested submissions) while idle workers steal from the back
// of a victim's deque (FIFO, so the oldest — usually largest — task migrates).
// External submissions are distributed round-robin. The pool is a scheduling
// substrate only: determinism is the *caller's* contract (tasks must write to
// disjoint state and own their RNG streams — see fleet::FleetEngine), which is
// why the pool makes no ordering promises beyond "every submitted task runs".
//
// Shutdown is graceful: the destructor stops accepting work, drains every
// queued task, then joins. Exceptions thrown by a task are captured in the
// std::future returned by submit() (or rethrown by parallel_for).
//
// Long-lived tasks: util::WorkerTeam parks one task per worker and releases
// them once per epoch (the fleet engine's steady-state loop). While such
// tasks are parked they count as in flight, so wait_idle() and the destructor
// block until the team is destroyed — always tear down a WorkerTeam before
// its pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace aqua::util {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(unsigned thread_count = 0);

  /// Drains all queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns the future of its result. A task that throws
  /// stores the exception in the future. Throws std::runtime_error if the
  /// pool is shutting down.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    std::packaged_task<R()> task{std::forward<F>(fn)};
    std::future<R> result = task.get_future();
    enqueue(Task{std::move(task)});
    return result;
  }

  /// Runs body(i) for i in [0, n), blocking until all iterations finish.
  /// Iterations are grouped into contiguous blocks (one task per block). The
  /// first exception (in iteration order of the blocks) is rethrown after
  /// every block has completed.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Blocks until no task is queued or running.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Tasks queued or running right now (approximate, for tests/telemetry).
  [[nodiscard]] std::size_t in_flight() const { return in_flight_.load(); }

 private:
  /// Move-only type-erased task (std::function requires copyability, which
  /// std::packaged_task does not offer).
  class Task {
   public:
    Task() = default;
    template <class F>
    explicit Task(F&& f)
        : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}
    void operator()() { impl_->call(); }
    [[nodiscard]] explicit operator bool() const { return impl_ != nullptr; }

   private:
    struct Concept {
      virtual ~Concept() = default;
      virtual void call() = 0;
    };
    template <class F>
    struct Model final : Concept {
      explicit Model(F f) : fn(std::move(f)) {}
      void call() override { fn(); }
      F fn;
    };
    std::unique_ptr<Concept> impl_;
  };

  struct Worker {
    std::mutex mutex;
    std::deque<Task> queue;
  };

  void enqueue(Task task);
  void worker_loop(std::size_t index);
  bool try_pop_local(std::size_t index, Task& out);
  bool try_steal(std::size_t thief, Task& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> in_flight_{0};  // queued + running
  std::atomic<std::size_t> queued_{0};     // sitting in a deque
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;   // workers sleep here
  std::condition_variable idle_cv_;   // wait_idle/destructor sleep here
};

}  // namespace aqua::util
