#include "util/barrier.hpp"

#include <stdexcept>

namespace aqua::util {

EpochBarrier::EpochBarrier(std::size_t participants)
    : participants_(participants) {
  if (participants == 0)
    throw std::invalid_argument("EpochBarrier: zero participants");
}

std::uint64_t EpochBarrier::arrive_and_wait() {
  std::unique_lock lock{mutex_};
  const std::uint64_t gen = generation_;
  if (++arrived_ == participants_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return gen;
  }
  cv_.wait(lock, [&] { return generation_ != gen; });
  return gen;
}

std::uint64_t EpochBarrier::generation() const {
  std::lock_guard lock{mutex_};
  return generation_;
}

}  // namespace aqua::util
