#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace aqua::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

SlidingWindowStats::SlidingWindowStats(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SlidingWindowStats: capacity 0");
}

void SlidingWindowStats::add(double x) {
  buf_.push_back(x);
  sum_ += x;
  sumsq_ += x * x;
  if (buf_.size() > capacity_) {
    const double old = buf_.front();
    buf_.pop_front();
    sum_ -= old;
    sumsq_ -= old * old;
  }
}

double SlidingWindowStats::mean() const {
  return buf_.empty() ? 0.0 : sum_ / static_cast<double>(buf_.size());
}

double SlidingWindowStats::stddev() const {
  const auto n = static_cast<double>(buf_.size());
  if (n < 2) return 0.0;
  const double m = sum_ / n;
  // Rounding can push the running sums negative for near-constant windows.
  const double var = std::max(0.0, (sumsq_ - n * m * m) / (n - 1.0));
  return std::sqrt(var);
}

double SlidingWindowStats::min() const {
  return buf_.empty() ? 0.0 : *std::min_element(buf_.begin(), buf_.end());
}

double SlidingWindowStats::max() const {
  return buf_.empty() ? 0.0 : *std::max_element(buf_.begin(), buf_.end());
}

double correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2)
    throw std::invalid_argument("correlation: need two equal series, n >= 2");
  const auto n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  const double denom = std::sqrt(saa * sbb);
  return denom > 0.0 ? sab / denom : 0.0;
}

double rms(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double quantile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty series");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = std::clamp(p, 0.0, 1.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = pos - static_cast<double>(lo);
  return sorted[lo] + t * (sorted[hi] - sorted[lo]);
}

}  // namespace aqua::util
