#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

#include "obs/trace.hpp"

namespace aqua::util {

namespace {

/// Initial threshold: `AQUA_LOG_LEVEL` when set to a valid level name,
/// kInfo otherwise (including on unrecognised values — a bad env var must
/// not silence a tool that relies on its warnings).
LogLevel initial_level() {
  if (const char* env = std::getenv("AQUA_LOG_LEVEL"))
    if (const auto parsed = log_level_from_string(env)) return *parsed;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_atomic() {
  static std::atomic<LogLevel> g_level{initial_level()};
  return g_level;
}

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff: return "";
  }
  return "";
}
}  // namespace

std::optional<LogLevel> log_level_from_string(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) { level_atomic().store(level); }
LogLevel log_level() { return level_atomic().load(); }

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(level_atomic().load())) return;
  std::cerr << prefix(level) << message << '\n';
  // Warnings and errors are rare and load-bearing, so when tracing is live
  // they also land on the timeline — a fault dump shows up right where the
  // epoch/solve spans say the fleet was.
  if (level >= LogLevel::kWarn && level < LogLevel::kOff &&
      obs::TraceRecorder::enabled()) {
    auto& recorder = obs::TraceRecorder::instance();
    recorder.emit(obs::TraceEventKind::kInstant,
                  recorder.intern(std::string(prefix(level)) + message));
  }
}

}  // namespace aqua::util
