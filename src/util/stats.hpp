// stats.hpp — streaming statistics used for resolution/repeatability reporting.
#pragma once

#include <cstddef>
#include <deque>
#include <span>

namespace aqua::util {

/// Welford online accumulator: mean, variance, min, max over a stream.
class RunningStats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n−1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  /// Half the peak-to-peak spread — the "±" resolution figure the paper quotes.
  [[nodiscard]] double half_span() const { return 0.5 * (max_ - min_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-length sliding window with mean/stddev/min/max over the window.
class SlidingWindowStats {
 public:
  explicit SlidingWindowStats(std::size_t capacity);

  void add(double x);
  [[nodiscard]] bool full() const { return buf_.size() == capacity_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
};

/// Pearson correlation of two equal-length series.
[[nodiscard]] double correlation(std::span<const double> a, std::span<const double> b);

/// Root-mean-square of a series.
[[nodiscard]] double rms(std::span<const double> xs);

/// p-quantile (0..1) of a series by linear interpolation on the sorted copy.
[[nodiscard]] double quantile(std::span<const double> xs, double p);

}  // namespace aqua::util
