// worker_team.hpp — persistent per-worker epoch loops on a ThreadPool.
//
// The fork/join pattern (enqueue a batch of tasks, join their futures, repeat
// every epoch) pays queue, wake-up and future overhead per task per epoch —
// the `enqueue_queue_depth` histogram showed the old fleet loop feeding the
// pool ~13 micro-tasks per epoch even for tiny fleets. A WorkerTeam submits
// ONE task per worker for its whole lifetime; each task parks on a barrier
// and is released once per run_epoch() call, so the steady-state cost of an
// epoch is two barrier crossings and zero enqueues.
//
//   util::ThreadPool pool{8};
//   util::WorkerTeam team{pool, pool.thread_count(), [&](std::size_t w) {
//     process_shard(w);            // runs on worker w, once per epoch
//   }};
//   for (int e = 0; e < epochs; ++e) {
//     prepare_epoch();             // serial, workers parked
//     team.run_epoch();            // release + wait: body(w) for every w
//   }                              // ~WorkerTeam releases the workers
//
// Contract (misuse deadlocks, so read this):
//  * The team occupies `workers` pool threads for its whole lifetime. Do not
//    run anything else on the pool while a team is alive (the parked tasks
//    block every worker they hold), and never create a team larger than the
//    pool — the constructor throws on that.
//  * Destroy the team before the pool. The pool's destructor waits for all
//    in-flight tasks; a still-parked team never finishes.
//  * One coordinating thread: run_epoch() and the destructor must be called
//    from a single thread that is not a team worker.
//
// A body that throws does not desynchronise the team: the exception is
// captured, the worker still reaches the epoch's end barrier, and run_epoch
// rethrows the first captured exception after the whole epoch completed. The
// team stays usable for further epochs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <vector>

#include "util/barrier.hpp"
#include "util/thread_pool.hpp"

namespace aqua::util {

class WorkerTeam {
 public:
  /// body(worker) runs on each of the `workers` dedicated workers once per
  /// run_epoch(). Throws std::invalid_argument when `workers` is 0 or exceeds
  /// pool.thread_count() (the excess tasks could never run — see above).
  WorkerTeam(ThreadPool& pool, std::size_t workers,
             std::function<void(std::size_t)> body);

  /// Releases the parked workers with the stop flag and joins their tasks.
  ~WorkerTeam();

  WorkerTeam(const WorkerTeam&) = delete;
  WorkerTeam& operator=(const WorkerTeam&) = delete;

  /// One synchronized pass: releases every worker, runs body(w) on each, and
  /// returns when all have finished. Rethrows the first (lowest worker index)
  /// exception a body threw this epoch; the team remains usable afterwards.
  void run_epoch();

  [[nodiscard]] std::size_t workers() const { return errors_.size(); }
  /// Completed run_epoch() calls.
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }

 private:
  void worker_loop(std::size_t worker);

  std::function<void(std::size_t)> body_;
  EpochBarrier start_;  // caller + workers: epoch may begin
  EpochBarrier done_;   // caller + workers: epoch finished
  // Written only while the workers are parked (before the start barrier the
  // destructor crosses); the barrier's mutex publishes it.
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;  // one slot per worker
  std::vector<std::future<void>> futures_;
  std::uint64_t epochs_ = 0;
};

}  // namespace aqua::util
