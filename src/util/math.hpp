// math.hpp — small numerical toolbox shared across modules: polynomial
// evaluation, linear least squares (tiny dense solver), 1-D minimisation and
// root bracketing, interpolation.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace aqua::util {

/// Horner evaluation of c[0] + c[1]x + c[2]x^2 + ...
[[nodiscard]] double polyval(std::span<const double> coeffs, double x);

/// Linear interpolation of y over strictly increasing knots x; clamps outside.
[[nodiscard]] double interp1(std::span<const double> x, std::span<const double> y,
                             double xq);

/// Solves the dense linear system A·x = b in place (partial-pivot Gaussian
/// elimination). A is row-major n×n. Throws std::invalid_argument on a
/// (numerically) singular matrix.
[[nodiscard]] std::vector<double> solve_linear(std::vector<double> a,
                                               std::vector<double> b);

/// Ordinary least squares: finds beta minimising |X·beta − y|² where X is
/// row-major with `cols` columns. Solves the normal equations; fine for the
/// small, well-conditioned fits used here (2–4 parameters).
[[nodiscard]] std::vector<double> least_squares(std::span<const double> x_rowmajor,
                                                std::span<const double> y,
                                                std::size_t cols);

/// Golden-section minimisation of a unimodal f over [lo, hi].
[[nodiscard]] double golden_minimize(const std::function<double(double)>& f,
                                     double lo, double hi, double tol = 1e-9);

/// Bisection root of f on [lo, hi]; requires a sign change.
[[nodiscard]] double bisect(const std::function<double(double)>& f, double lo,
                            double hi, double tol = 1e-12);

/// Clamped linear map of x from [in_lo, in_hi] to [out_lo, out_hi].
[[nodiscard]] double remap_clamped(double x, double in_lo, double in_hi,
                                   double out_lo, double out_hi);

}  // namespace aqua::util
