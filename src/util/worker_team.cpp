#include "util/worker_team.hpp"

#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace aqua::util {

WorkerTeam::WorkerTeam(ThreadPool& pool, std::size_t workers,
                       std::function<void(std::size_t)> body)
    : body_(std::move(body)),
      start_(workers + 1),
      done_(workers + 1),
      errors_(workers) {
  if (workers == 0)
    throw std::invalid_argument("WorkerTeam: zero workers");
  if (workers > pool.thread_count())
    throw std::invalid_argument(
        "WorkerTeam: more workers than pool threads — the surplus tasks "
        "would park forever and deadlock the team");
  futures_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    futures_.push_back(pool.submit([this, w] { worker_loop(w); }));
}

WorkerTeam::~WorkerTeam() {
  stop_ = true;  // published to the parked workers by the barrier's mutex
  start_.arrive_and_wait();
  // The loops return without touching the done barrier; join their tasks so
  // the pool is reusable the moment this destructor returns.
  for (auto& f : futures_) f.get();
}

void WorkerTeam::worker_loop(std::size_t worker) {
  for (;;) {
    start_.arrive_and_wait();
    if (stop_) return;
    {
      AQUA_TRACE_SPAN("team.epoch");
      try {
        body_(worker);
      } catch (...) {
        // Never skip the end barrier: a missing participant would hang the
        // whole team. The coordinator rethrows after the epoch completes.
        errors_[worker] = std::current_exception();
      }
    }
    done_.arrive_and_wait();
  }
}

void WorkerTeam::run_epoch() {
  start_.arrive_and_wait();
  done_.arrive_and_wait();
  ++epochs_;
  for (auto& slot : errors_) {
    if (slot) {
      const std::exception_ptr first = slot;
      for (auto& e : errors_) e = nullptr;
      std::rethrow_exception(first);
    }
  }
}

}  // namespace aqua::util
