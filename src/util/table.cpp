#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace aqua::util {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::columns(std::vector<std::string> names) {
  cols_ = std::move(names);
  return *this;
}

Table& Table::precision(int digits) {
  precision_ = digits;
  return *this;
}

void Table::add_row(std::vector<Cell> cells) {
  if (!cols_.empty() && cells.size() != cols_.size())
    throw std::invalid_argument("Table::add_row: width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(cols_.size(), 0);
  for (std::size_t i = 0; i < cols_.size(); ++i) widths[i] = cols_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(format_cell(row[i]));
      if (i < widths.size()) widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  const auto rule = [&] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  os << '|';
  for (std::size_t i = 0; i < cols_.size(); ++i)
    os << ' ' << std::left << std::setw(static_cast<int>(widths[i])) << cols_[i] << " |";
  os << '\n';
  rule();
  for (const auto& r : rendered) {
    os << '|';
    for (std::size_t i = 0; i < r.size(); ++i)
      os << ' ' << std::right << std::setw(static_cast<int>(widths[i])) << r[i] << " |";
    os << '\n';
  }
  rule();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    return q + "\"";
  };
  for (std::size_t i = 0; i < cols_.size(); ++i)
    out << escape(cols_[i]) << (i + 1 < cols_.size() ? "," : "\n");
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i)
      out << escape(format_cell(row[i])) << (i + 1 < row.size() ? "," : "\n");
  }
}

}  // namespace aqua::util
