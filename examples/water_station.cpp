// water_station — the full Vinci evaluation scenario (paper §5): a dedicated
// measurement line with tunable speed and pressure, a Promag-class reference
// magmeter, and the MAF+ISIF prototype under test. Runs a day-in-the-life
// schedule (morning demand ramp, midday plateau, a pressure transient, night
// flow) and prints the station log.
#include <cstdio>
#include <iostream>

#include "core/estimator.hpp"
#include "core/rig.hpp"
#include "sim/schedule.hpp"
#include "util/table.hpp"

int main() {
  using namespace aqua;
  using util::Seconds;

  cta::RigConfig cfg;
  cfg.isif = cta::fast_isif_config();
  cfg.line.turbulence_intensity = 0.02;
  cfg.seed = 77;
  cta::VinciRig rig{cfg};

  std::puts("commissioning the probe at zero flow...");
  rig.commission(Seconds{2.0});

  std::puts("calibrating against the station magmeter...");
  const std::vector<double> cal{0.0, 0.2, 0.5, 1.0, 1.6, 2.2, 2.5};
  const cta::KingFit fit = rig.calibrate(cal, Seconds{1.5});
  cta::FlowEstimator estimator{fit, util::metres_per_second(2.5),
                               rig.line().temperature()};
  std::printf("  King fit: A=%.4f B=%.4f n=%.3f (rms %.2f mV)\n\n", fit.a,
              fit.b, fit.n, fit.rms_residual * 1e3);

  // A compressed "day": each simulated phase lasts 30 s here.
  sim::Schedule speed{0.1};
  speed.hold(Seconds{30.0});             // night flow
  speed.ramp_to(1.8, Seconds{30.0});     // morning ramp
  speed.hold(Seconds{30.0});             // daytime plateau
  speed.step_to(2.5, Seconds{20.0});     // peak demand
  speed.ramp_to(0.4, Seconds{30.0});     // evening decay
  speed.hold(Seconds{20.0});
  rig.line().set_speed_schedule(speed);

  sim::Schedule pressure{util::bar(2.0).value()};
  pressure.hold(Seconds{70.0});
  pressure.step_to(util::bar(3.0).value(), Seconds{40.0});
  pressure.step_to(util::bar(2.0).value(), Seconds{50.0});
  rig.line().set_pressure_schedule(pressure);

  util::Table log{"station log (one row / 10 s)"};
  log.columns({"t [s]", "pressure [bar]", "reference [cm/s]", "MAF [cm/s]",
               "dir", "error [%FS]"});
  log.precision(2);

  for (int block = 0; block < 16; ++block) {
    rig.run(Seconds{10.0});
    const auto reading = estimator.read(rig.anemometer());
    const double ref = util::to_centimetres_per_second(rig.magmeter_reading());
    const double maf = util::to_centimetres_per_second(reading.speed);
    log.add_row({(block + 1) * 10.0, util::to_bar(rig.line().pressure()), ref,
                 maf,
                 std::string(reading.direction >= 0 ? "fwd" : "rev"),
                 (maf - ref) / 250.0 * 100.0});
  }
  log.print(std::cout);

  const auto status = rig.anemometer().status();
  std::printf(
      "\nend of shift: membrane %s, package %s, LEON load %.2f%%, watchdog %s\n",
      status.membrane_intact ? "intact" : "BROKEN",
      status.package_healthy ? "healthy" : "DEGRADED", status.cpu_load * 100.0,
      status.watchdog_tripped ? "TRIPPED" : "clear");
  return 0;
}
