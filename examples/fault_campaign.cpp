// fault_campaign — the robustness layer end to end: a seeded fault-injection
// campaign over a supervised 10-sensor fleet. Faults are injected at the
// physical layers (die surface, membrane, package, ADC word, DAC rail,
// firmware); the FleetSupervisor detects them through each sensor's own
// diagnostics, quarantines the liars, re-commissions under capped exponential
// backoff, and the leak localizer keeps working on the surviving subset.
//
// This binary is the CI gate for the fault/supervision stack. It runs the
// identical campaign serially and on an 8-thread pool and enforces:
//   * every injected hard fault is detected (quarantined or contained);
//   * zero quarantine flaps (no quarantine on any fault-free sensor);
//   * the two CampaignSummaries are bit-identical, trace checksum included;
//   * the masked estimates feed the leak localizer NaN-free and the leak is
//     still localized with part of the fleet out of service.
// Exit status is nonzero on any violation. The serial summary is written as
// JSON to argv[1] (or $AQUA_CAMPAIGN_JSON, default
// fault_campaign_summary.json) for the CI artifact upload.
//
// Crash-recovery mode (DESIGN.md §14): with any of the flags below the binary
// runs the campaign through a CampaignRunner with durable checkpoints instead
// of the full gate battery, so CI can kill it mid-campaign and prove the
// resumed summary is byte-identical to an uninterrupted run's:
//   --checkpoint-dir DIR    where checkpoints go (required for the others)
//   --checkpoint-every N    write a checkpoint every N epochs
//   --kill-at-epoch K       exit(0) after epoch K — a simulated crash; only
//                           checkpoints the cadence already wrote survive
//   --resume DIR            restore the newest valid checkpoint from DIR
//                           (corrupt files are skipped) and run to completion
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/rig.hpp"
#include "fault/campaign.hpp"
#include "fleet/fleet.hpp"
#include "fleet/supervisor.hpp"
#include "state/checkpoint.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace aqua;
using util::Seconds;

constexpr std::uint64_t kSeed = 2008;
constexpr double kEpochS = 0.25;
const Seconds kCampaignLength{20.0};

struct District {
  hydro::WaterNetwork net;
  std::vector<fleet::SensorPlacement> placements;
  std::vector<hydro::WaterNetwork::PipeId> pipes;
  hydro::WaterNetwork::NodeId leak_node = 0;
};

// Same looped 10-pipe district as examples/fleet_monitoring — one sensor per
// pipe, so every junction is mass-balanced when the whole fleet is healthy.
District make_district() {
  District d;
  const auto res = d.net.add_reservoir(40.0);
  const auto n1 = d.net.add_junction(2.0, 0.0015);
  const auto n2 = d.net.add_junction(2.0, 0.0025);
  const auto n3 = d.net.add_junction(1.5, 0.0025);
  const auto n4 = d.net.add_junction(1.0, 0.0020);
  const auto n5 = d.net.add_junction(1.0, 0.0020);
  const auto n6 = d.net.add_junction(0.5, 0.0015);
  const auto n7 = d.net.add_junction(0.5, 0.0015);
  using util::metres;
  using util::millimetres;
  d.net.add_pipe(res, n1, metres(300.0), millimetres(200.0));
  d.net.add_pipe(n1, n2, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n1, n3, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n2, n4, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n3, n5, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n2, n3, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n4, n6, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n5, n7, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n4, n5, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n6, n7, metres(250.0), millimetres(80.0));
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p) {
    d.placements.push_back(fleet::SensorPlacement{p, 0.0});
    d.pipes.push_back(p);
  }
  // The leak goes at n2: a junction the campaign's permanent casualties
  // (which cluster downstream around n4..n7 for this seed) leave observable.
  // A leak at a junction ALL of whose neighbouring pipes are dead is
  // fundamentally ambiguous — graceful degradation means the localizer keeps
  // working wherever coverage survives, not that it beats missing physics.
  (void)n4;
  d.leak_node = n2;
  return d;
}

fleet::FleetConfig make_config() {
  fleet::FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = kSeed;
  cfg.epoch = Seconds{kEpochS};
  return cfg;
}

fleet::SupervisorConfig make_supervisor_config() {
  fleet::SupervisorConfig cfg;
  // Campaign cadence: a dead channel must be caught well inside the shortest
  // event window (4 s = 16 epochs), so 6 identical readings suffice.
  cfg.health.stuck_count = 6;
  return cfg;
}

fault::FaultCampaign make_campaign(std::size_t sensor_count) {
  // Seeded schedule: 12 events over the first 6 s, each 4–8 s long. Every
  // parameter of event k is a pure function of (kSeed, k), so the schedule —
  // and with it the whole campaign — reproduces bit-identically anywhere.
  return fault::FaultCampaign::random(kSeed, 12, sensor_count, Seconds{0.5},
                                      Seconds{6.0}, Seconds{4.0},
                                      Seconds{8.0});
}

struct RunResult {
  fault::CampaignSummary summary;
  std::vector<fleet::NodeHealthState> final_states;
  fleet::MaskedEstimates leak_estimates;  // masked estimates while leaking
  bool leak_detected = false;
  std::size_t leak_rank = 0;  // 1 = top hypothesis; 0 = not ranked at all
  bool estimates_finite = true;
};

RunResult run_once(unsigned threads) {
  District d = make_district();
  fleet::FleetEngine engine(d.net, d.placements, make_config());
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});

  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);

  // The localizer's healthy baseline must be captured before the leak opens.
  cta::LeakLocalizer localizer(d.net, d.pipes,
                               util::metres_per_second(0.02));
  // This district is heavily loaded; a gentle probe keeps every candidate
  // signature solve convergent.
  localizer.set_probe_emitter(2e-4);
  localizer.calibrate();

  engine.commission(Seconds{0.3}, pool.get());
  fleet::FleetSupervisor supervisor(engine, make_supervisor_config());

  RunResult r;
  r.summary = fault::run_campaign(engine, supervisor, make_campaign(engine.size()),
                                  kCampaignLength, pool.get());

  // Drain: fault-free epochs so every recoverable sensor works its way back
  // through backoff + probation; only the permanent casualties stay out.
  const auto supervise = [&](double seconds) {
    const long long epochs =
        static_cast<long long>(std::lround(seconds / kEpochS));
    for (long long e = 0; e < epochs; ++e) {
      engine.step_epoch(pool.get());
      supervisor.poll();
    }
  };
  supervise(8.0);

  // Degraded-mode localization: with the campaign's permanent casualties
  // still quarantined, spring a leak and ask the surviving subset.
  d.net.set_leak(d.leak_node, 1e-3);
  supervise(4.0);
  r.leak_estimates = engine.latest_estimates_masked();
  for (const double v : r.leak_estimates.values)
    if (!std::isfinite(v)) r.estimates_finite = false;
  r.leak_detected = localizer.leak_detected(r.leak_estimates.values,
                                            r.leak_estimates.valid);
  const auto hypotheses =
      localizer.locate(r.leak_estimates.values, r.leak_estimates.valid);
  for (std::size_t c = 0; c < hypotheses.size(); ++c) {
    if (!std::isfinite(hypotheses[c].estimated_flow_m3s) ||
        !std::isfinite(hypotheses[c].residual_norm))
      r.estimates_finite = false;
    if (hypotheses[c].node == d.leak_node) r.leak_rank = c + 1;
  }

  for (std::size_t i = 0; i < engine.size(); ++i)
    r.final_states.push_back(supervisor.state(i));
  return r;
}

bool summaries_identical(const fault::CampaignSummary& a,
                         const fault::CampaignSummary& b) {
  // Bit-identical is the claim, so plain == on the doubles is exactly right.
  if (a.epochs != b.epochs || a.sim_time_s != b.sim_time_s ||
      a.sensors != b.sensors || a.injected != b.injected ||
      a.hard_injected != b.hard_injected ||
      a.hard_detected != b.hard_detected ||
      a.transient_injected != b.transient_injected ||
      a.transient_detected != b.transient_detected ||
      a.transient_recovered != b.transient_recovered ||
      a.failed_permanently != b.failed_permanently ||
      a.quarantine_flaps != b.quarantine_flaps ||
      a.trace_checksum != b.trace_checksum ||
      a.outcomes.size() != b.outcomes.size())
    return false;
  for (std::size_t k = 0; k < a.outcomes.size(); ++k) {
    const fault::FaultOutcome& x = a.outcomes[k];
    const fault::FaultOutcome& y = b.outcomes[k];
    if (x.injected != y.injected || x.injected_t_s != y.injected_t_s ||
        x.quarantined_t_s != y.quarantined_t_s ||
        x.detection_epochs != y.detection_epochs ||
        x.recovered_t_s != y.recovered_t_s)
      return false;
  }
  return true;
}

struct Options {
  std::string json_path = "fault_campaign_summary.json";
  std::string checkpoint_dir;  // where new checkpoints are written
  std::string resume_dir;      // where to look for one to restore
  long long checkpoint_every = 0;
  long long kill_at_epoch = -1;
  [[nodiscard]] bool runner_mode() const {
    return !checkpoint_dir.empty() || !resume_dir.empty() ||
           checkpoint_every > 0 || kill_at_epoch >= 0;
  }
};

/// The crash-recovery path: campaign only (no drain / leak gates), stepped
/// one epoch at a time through a CampaignRunner so there is a checkpoint
/// boundary to die at and to come back from.
int run_checkpoint_mode(const Options& opt) {
  std::optional<state::CheckpointManager> manager;
  if (!opt.checkpoint_dir.empty())
    manager.emplace(opt.checkpoint_dir, "campaign", 3);

  District d = make_district();
  fleet::FleetEngine engine(d.net, d.placements, make_config());
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});

  long long epoch = 0;
  bool resumed = false;
  if (!opt.resume_dir.empty()) {
    state::CheckpointManager source{opt.resume_dir, "campaign", 3};
    const auto loaded = source.load_newest_valid();
    if (!loaded.has_value()) {
      std::fprintf(stderr, "no valid checkpoint under %s\n",
                   opt.resume_dir.c_str());
      return 1;
    }
    // The restore target is a freshly constructed trio — no commissioning;
    // the image carries the fully-commissioned state.
    fleet::FleetSupervisor supervisor(engine, make_supervisor_config());
    fault::CampaignRunner runner{engine, supervisor,
                                 make_campaign(engine.size()),
                                 kCampaignLength};
    runner.restore(loaded->image);
    epoch = static_cast<long long>(loaded->epoch);
    resumed = true;
    std::printf("resumed from %s at epoch %lld\n", loaded->path.c_str(),
                epoch);
    while (!runner.done()) {
      runner.step();
      ++epoch;
      if (manager && opt.checkpoint_every > 0 &&
          epoch % opt.checkpoint_every == 0)
        manager->write(static_cast<std::uint64_t>(epoch), runner.checkpoint());
    }
    const fault::CampaignSummary s = runner.finish();
    std::ofstream out(opt.json_path);
    out << s.to_json();
    std::printf("campaign complete (resumed): checksum %016llx, wrote %s\n",
                static_cast<unsigned long long>(s.trace_checksum),
                opt.json_path.c_str());
    return 0;
  }

  engine.commission(Seconds{0.3});
  fleet::FleetSupervisor supervisor(engine, make_supervisor_config());
  fault::CampaignRunner runner{engine, supervisor, make_campaign(engine.size()),
                               kCampaignLength};
  while (!runner.done()) {
    runner.step();
    ++epoch;
    if (manager && opt.checkpoint_every > 0 &&
        epoch % opt.checkpoint_every == 0)
      manager->write(static_cast<std::uint64_t>(epoch), runner.checkpoint());
    if (opt.kill_at_epoch >= 0 && epoch >= opt.kill_at_epoch) {
      std::printf("simulated crash at epoch %lld — exiting without summary\n",
                  epoch);
      return 0;
    }
  }
  const fault::CampaignSummary s = runner.finish();
  std::ofstream out(opt.json_path);
  out << s.to_json();
  std::printf("campaign complete%s: checksum %016llx, wrote %s\n",
              resumed ? " (resumed)" : "",
              static_cast<unsigned long long>(s.trace_checksum),
              opt.json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (const char* env_path = std::getenv("AQUA_CAMPAIGN_JSON"))
    opt.json_path = env_path;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--checkpoint-dir") == 0)
      opt.checkpoint_dir = value();
    else if (std::strcmp(argv[i], "--checkpoint-every") == 0)
      opt.checkpoint_every = std::atoll(value());
    else if (std::strcmp(argv[i], "--kill-at-epoch") == 0)
      opt.kill_at_epoch = std::atoll(value());
    else if (std::strcmp(argv[i], "--resume") == 0)
      opt.resume_dir = value();
    else
      opt.json_path = argv[i];  // positional: summary JSON path, as before
  }
  if (opt.runner_mode()) return run_checkpoint_mode(opt);
  const std::string& json_path = opt.json_path;

  std::printf("fault campaign: seed %llu, %.0f s, epoch %.2f s\n",
              static_cast<unsigned long long>(kSeed), kCampaignLength.value(),
              kEpochS);
  const RunResult serial = run_once(0 /* no pool: caller's thread */);
  const RunResult parallel = run_once(8);

  const fault::CampaignSummary& s = serial.summary;
  std::printf("\n%zu sensors, %lld events injected "
              "(%lld hard, %lld transient)\n",
              s.sensors, s.injected, s.hard_injected, s.transient_injected);
  for (const fault::FaultOutcome& o : s.outcomes)
    std::printf("  sensor %zu %-18s sev %.2f  t=%6.2f s  %s%s\n",
                o.event.sensor, fault::fault_kind_label(o.event.kind),
                o.event.severity, o.injected_t_s,
                o.quarantined_t_s >= 0.0 ? "contained" : "uncontained",
                o.recovered_t_s >= 0.0 ? ", recovered" : "");
  std::printf("hard detected %lld/%lld, transient detected %lld/%lld "
              "(%lld recovered), %lld sensors permanently failed, "
              "%lld flaps\n",
              s.hard_detected, s.hard_injected, s.transient_detected,
              s.transient_injected, s.transient_recovered,
              s.failed_permanently, s.quarantine_flaps);
  std::printf("trace checksum serial %016llx / 8 threads %016llx\n",
              static_cast<unsigned long long>(s.trace_checksum),
              static_cast<unsigned long long>(parallel.summary.trace_checksum));
  std::printf("final states:");
  for (std::size_t i = 0; i < serial.final_states.size(); ++i)
    std::printf(" %zu:%s", i,
                fleet::node_health_state_name(serial.final_states[i]));
  std::printf("\n");
  std::printf("degraded-mode leak: %zu/%zu sensors in service, detected %s, "
              "true junction ranked #%zu\n",
              serial.leak_estimates.valid_count(),
              serial.leak_estimates.values.size(),
              serial.leak_detected ? "yes" : "NO", serial.leak_rank);

  std::ofstream out(json_path);
  out << s.to_json();
  out.close();
  std::printf("summary: wrote %s\n", json_path.c_str());

  // --- the gates -----------------------------------------------------------
  int failures = 0;
  const auto gate = [&failures](bool ok, const char* what) {
    std::printf("gate %-44s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  gate(s.injected == static_cast<long long>(s.outcomes.size()),
       "all scheduled events injected");
  gate(s.hard_detected == s.hard_injected && s.hard_injected > 0,
       "100% of hard faults detected");
  gate(s.quarantine_flaps == 0, "zero quarantine flaps");
  gate(summaries_identical(s, parallel.summary),
       "serial vs 8-thread summaries bit-identical");
  gate(serial.final_states == parallel.final_states,
       "serial vs 8-thread final supervision states");
  gate(serial.estimates_finite, "masked estimates and hypotheses finite");
  gate(serial.leak_detected, "leak detected in degraded mode");
  // Bounded localization error: the true junction must stay in the top 3
  // even though the casualties include the leak's own adjacent pipes.
  gate(serial.leak_rank >= 1 && serial.leak_rank <= 3,
       "leak localization error bounded (top 3)");
  std::printf("\n%s\n", failures == 0 ? "campaign gates: ALL PASS"
                                      : "campaign gates: FAILURES");
  return failures == 0 ? 0 : 1;
}
