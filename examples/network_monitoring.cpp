// network_monitoring — the paper's motivating application (§6): a water
// district instrumented with cheap MAF insertion probes. The example builds a
// small distribution network, calibrates the model-based leak localiser,
// injects a night-time leak, and walks through detection → localisation →
// isolation candidate.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/monitor.hpp"
#include "hydro/network.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace aqua;
  using hydro::WaterNetwork;
  using util::metres;
  using util::millimetres;

  // --- the district: one feed, six junctions, two loops ---------------------
  WaterNetwork net;
  const auto reservoir = net.add_reservoir(55.0);
  std::vector<WaterNetwork::NodeId> j;
  const char* names[] = {"piazza", "scuola", "mercato",
                         "chiesa", "mulino", "fontana"};
  for (int i = 0; i < 6; ++i) j.push_back(net.add_junction(0.0, 0.003));

  std::vector<WaterNetwork::PipeId> sensed_pipes;
  sensed_pipes.push_back(
      net.add_pipe(reservoir, j[0], metres(300.0), millimetres(200.0)));
  sensed_pipes.push_back(net.add_pipe(j[0], j[1], metres(400.0), millimetres(150.0)));
  sensed_pipes.push_back(net.add_pipe(j[1], j[2], metres(400.0), millimetres(100.0)));
  sensed_pipes.push_back(net.add_pipe(j[0], j[3], metres(400.0), millimetres(150.0)));
  sensed_pipes.push_back(net.add_pipe(j[3], j[4], metres(400.0), millimetres(100.0)));
  sensed_pipes.push_back(net.add_pipe(j[1], j[4], metres(300.0), millimetres(80.0)));
  sensed_pipes.push_back(net.add_pipe(j[4], j[5], metres(400.0), millimetres(80.0)));
  sensed_pipes.push_back(net.add_pipe(j[2], j[5], metres(400.0), millimetres(80.0)));

  // Every pipe carries a MAF probe; resolution from the E2 experiment.
  cta::LeakLocalizer monitor{net, sensed_pipes,
                             util::centimetres_per_second(0.7)};
  monitor.calibrate();
  std::puts("district calibrated: 8 MAF probes, 6 junctions, 1 feed\n");

  util::Table baseline{"healthy night-flow baseline"};
  baseline.columns({"pipe", "velocity [cm/s]"});
  baseline.precision(1);
  for (std::size_t i = 0; i < sensed_pipes.size(); ++i)
    baseline.add_row({std::string("pipe ") + std::to_string(i),
                      monitor.baseline()[i] * 100.0});
  baseline.print(std::cout);

  // --- 03:00: a service line bursts at the "mulino" junction ----------------
  const std::size_t burst_at = 4;
  net.set_leak(j[burst_at], 1.2e-3);
  if (!net.solve()) {
    std::puts("network solve failed");
    return 1;
  }
  std::printf("\n[03:00] injected leak at '%s': %.2f L/s escaping\n",
              names[burst_at], net.leak_flow(j[burst_at]) * 1e3);

  // The probes report (with their measurement noise).
  util::Rng rng{9};
  std::vector<double> measured;
  for (auto p : sensed_pipes)
    measured.push_back(net.pipe_velocity(p).value() +
                       rng.gaussian(0.0, 0.007));

  if (!monitor.leak_detected(measured)) {
    std::puts("monitor: no anomaly (leak too small for this sensor set)");
    return 0;
  }
  std::puts("monitor: ANOMALY — pipe velocities inconsistent with baseline");

  const auto ranked = monitor.locate(measured);
  util::Table hypo{"leak hypotheses (best first)"};
  hypo.columns({"junction", "estimated loss [L/s]", "residual norm"});
  hypo.precision(3);
  for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
    // Junction ids start after the reservoir (node 0).
    const auto junction_index = ranked[i].node - 1;
    hypo.add_row({std::string(names[junction_index]),
                  ranked[i].estimated_flow_m3s * 1e3,
                  ranked[i].residual_norm});
  }
  hypo.print(std::cout);

  const bool correct = ranked.front().node == j[burst_at];
  std::printf("\n=> crew dispatched to '%s' (%s)\n",
              names[ranked.front().node - 1],
              correct ? "correct" : "incorrect");
  if (!correct) return 1;

  // --- isolate: close the pipes feeding 'mulino' (pipes 4, 5, 6) ------------
  const double loss_before = net.leak_flow(j[burst_at]) * 1e3;
  net.set_pipe_open(sensed_pipes[4], false);
  net.set_pipe_open(sensed_pipes[5], false);
  net.set_pipe_open(sensed_pipes[6], false);
  if (!net.solve()) {
    std::puts("isolation solve failed");
    return 1;
  }
  std::printf(
      "[03:20] valves closed around '%s': loss %.2f L/s -> %.2f L/s. "
      "Section isolated.\n",
      names[burst_at], loss_before, net.leak_flow(j[burst_at]) * 1e3);
  return 0;
}
