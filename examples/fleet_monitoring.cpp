// fleet_monitoring — the paper's §6 vision end to end: a fleet of cheap MAF
// insertion sensors "widely diffused all over the water distribution
// channels", co-simulated against a small looped district over a compressed
// diurnal day, stepped in parallel on a work-stealing pool. Halfway through,
// a pipe springs a pressure-driven leak; the fleet's per-junction mass
// balance localizes it.
#include <cstdio>
#include <vector>

#include "core/monitor.hpp"
#include "core/rig.hpp"
#include "fleet/fleet.hpp"
#include "fleet/supervisor.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace aqua;
  using util::Seconds;

  // Capture the whole run as a trace: epochs, hydro solves, per-sensor frame
  // batches and the pool's task/steal activity, one track per thread.
  obs::TraceRecorder::set_enabled(true);
  obs::TraceRecorder::set_thread_name("main");

  // --- the district: one reservoir, 7 junctions, 10 pipes, looped ----------
  hydro::WaterNetwork net;
  const auto res = net.add_reservoir(40.0);
  const auto n1 = net.add_junction(2.0, 0.0015);
  const auto n2 = net.add_junction(2.0, 0.0025);
  const auto n3 = net.add_junction(1.5, 0.0025);
  const auto n4 = net.add_junction(1.0, 0.0020);
  const auto n5 = net.add_junction(1.0, 0.0020);
  const auto n6 = net.add_junction(0.5, 0.0015);
  const auto n7 = net.add_junction(0.5, 0.0015);
  using util::metres;
  using util::millimetres;
  net.add_pipe(res, n1, metres(300.0), millimetres(200.0));
  net.add_pipe(n1, n2, metres(400.0), millimetres(150.0));
  net.add_pipe(n1, n3, metres(400.0), millimetres(150.0));
  net.add_pipe(n2, n4, metres(300.0), millimetres(100.0));
  net.add_pipe(n3, n5, metres(300.0), millimetres(100.0));
  net.add_pipe(n2, n3, metres(300.0), millimetres(100.0));
  net.add_pipe(n4, n6, metres(250.0), millimetres(80.0));
  net.add_pipe(n5, n7, metres(250.0), millimetres(80.0));
  net.add_pipe(n4, n5, metres(250.0), millimetres(80.0));
  net.add_pipe(n6, n7, metres(250.0), millimetres(80.0));

  // One sensor per pipe: full observability, every junction balanced.
  std::vector<fleet::SensorPlacement> placements;
  std::vector<hydro::WaterNetwork::PipeId> pipes;
  for (hydro::WaterNetwork::PipeId p = 0; p < net.pipe_count(); ++p) {
    placements.push_back(fleet::SensorPlacement{p, 0.0});
    pipes.push_back(p);
  }

  fleet::FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();  // monitoring, not metrology
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 2008;  // DATE'08 — any seed reproduces bit-identically
  cfg.epoch = Seconds{0.25};
  const Seconds day{4.0};  // 24 h compressed to 4 s of simulation
  cfg.demand_factor = fleet::diurnal_demand_pattern(day);

  fleet::FleetEngine engine(net, placements, cfg);
  util::ThreadPool pool;  // hardware concurrency
  std::printf("fleet: %zu sensors on %zu pipes, pool of %zu threads\n",
              engine.size(), net.pipe_count(), pool.thread_count());

  // --- commission + per-die King's-law calibration (parallel) --------------
  engine.commission(Seconds{0.5}, &pool);
  const std::vector<double> speeds{0.05, 0.2, 0.5, 0.9};
  engine.calibrate(speeds, Seconds{0.4}, &pool);
  std::printf("calibrated %zu dies (each absorbs its own tolerances)\n\n",
              engine.size());

  // Leak localizer signatures must be learned on the pre-leak network; the
  // small probe emitter keeps the probe leak well under the district demand.
  cta::LeakLocalizer localizer(net, pipes, util::metres_per_second(0.02));
  localizer.set_probe_emitter(2e-4);
  localizer.calibrate();

  // The fleet supervisor watches every sensor once per epoch from here on.
  fleet::FleetSupervisor supervisor(engine, fleet::SupervisorConfig{});
  const auto run_supervised = [&](Seconds duration) {
    const long long epochs =
        static_cast<long long>(duration.value() / cfg.epoch.value() + 0.5);
    for (long long e = 0; e < epochs; ++e) {
      engine.step_epoch(&pool);
      supervisor.poll();
    }
  };

  // --- a healthy compressed day --------------------------------------------
  run_supervised(day);
  const fleet::FleetReport healthy = engine.report();
  std::printf("healthy day: demand %.1f l/s, worst junction residual "
              "%+.2f l/s\n",
              healthy.total_demand_m3s * 1e3,
              healthy.ranked_suspects().empty()
                  ? 0.0
                  : healthy.ranked_suspects().front().residual_m3s * 1e3);
  std::printf("%-8s %-6s %12s %12s %10s\n", "sensor", "pipe", "est [m/s]",
              "true [m/s]", "rms [m/s]");
  for (const fleet::SensorSummary& s : healthy.sensors)
    std::printf("%-8zu %-6zu %12.3f %12.3f %10.3f\n", s.index, s.pipe,
                s.final_estimate_mps, s.final_true_mps, s.rms_error_mps);

  // --- spring a leak at junction n4, keep monitoring ------------------------
  std::printf("\n*** leak springs at junction %zu ***\n", n4);
  net.set_leak(n4, 1e-3);  // q = C*sqrt(pressure head)
  run_supervised(Seconds{1.5});

  const fleet::FleetReport leaking = engine.report();
  std::printf("escaping flow (model truth): %.2f l/s\n",
              leaking.total_leak_m3s * 1e3);
  std::printf("ranked suspects (mass-balance residual = unexplained "
              "inflow):\n");
  const auto suspects = leaking.ranked_suspects();
  for (std::size_t i = 0; i < suspects.size() && i < 3; ++i)
    std::printf("  #%zu junction %zu: %+.2f l/s%s\n", i + 1,
                suspects[i].node, suspects[i].residual_m3s * 1e3,
                suspects[i].node == n4 ? "  <-- the leak" : "");

  const bool localized = !suspects.empty() && suspects.front().node == n4;
  std::printf("\n%s\n", localized
                            ? "leak localized: isolate the junction and "
                              "dispatch the crew (paper vision achieved)"
                            : "leak NOT localized");

  // --- a sensor dies in the field: degraded-mode localization ---------------
  // Water hammer ruptures the membrane of the sensor on the n6–n7 balancing
  // pipe. The supervisor quarantines it on the next poll, and the masked
  // estimate API pins its entry to zero instead of silently replaying the
  // last pre-fault sample — the stale-data hazard latest_estimates() had.
  const std::size_t casualty = 9;  // sensor on the n6–n7 pipe
  std::printf("\n*** sensor %zu membrane ruptures (water hammer) ***\n",
              casualty);
  engine.node(casualty).anemometer().die().damage_membrane();
  run_supervised(Seconds{1.0});

  const fleet::MaskedEstimates masked = engine.latest_estimates_masked();
  std::printf("supervisor: sensor %zu is %s; %zu of %zu sensors in service\n",
              casualty,
              fleet::node_health_state_name(supervisor.state(casualty)),
              masked.valid_count(), engine.size());
  const bool casualty_masked =
      masked.valid[casualty] == 0 && masked.values[casualty] == 0.0;

  // The leak localizer's masked overloads keep working on the surviving set.
  const bool still_detected =
      localizer.leak_detected(masked.values, masked.valid);
  std::size_t masked_rank = 0;
  const auto hypotheses = localizer.locate(masked.values, masked.valid);
  for (std::size_t i = 0; i < hypotheses.size(); ++i)
    if (hypotheses[i].node == n4) masked_rank = i + 1;
  std::printf("degraded mode: leak %s, true junction ranked #%zu of %zu\n",
              still_detected ? "still detected" : "LOST", masked_rank,
              hypotheses.size());
  const bool degraded_ok = casualty_masked && still_detected &&
                           masked_rank >= 1 && masked_rank <= 3;
  std::printf("%s\n", degraded_ok
                          ? "graceful degradation: one casualty, mission "
                            "intact"
                          : "degraded-mode localization FAILED");

  // --- export the timeline ---------------------------------------------------
  const std::string trace_path = "fleet_monitoring_trace.json";
  obs::write_chrome_trace(trace_path,
                          obs::TraceRecorder::instance().snapshot());
  std::printf("\ntrace: wrote %s — open it at https://ui.perfetto.dev to see "
              "the day unfold per thread\n",
              trace_path.c_str());
  return localized && degraded_ok ? 0 : 1;
}
