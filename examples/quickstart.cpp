// quickstart — the shortest useful tour of the public API:
//   1. build a MAF die + ISIF platform + CTA loop,
//   2. commission it at zero flow,
//   3. calibrate King's law against a few reference points,
//   4. measure an unknown flow with direction.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "core/calibration.hpp"
#include "core/cta.hpp"
#include "core/estimator.hpp"
#include "core/rig.hpp"

int main() {
  using namespace aqua;

  // 1. The sensor + platform + loop, with everything at its datasheet default
  //    (50 Ω heater, 2 kΩ reference, 2 µm membrane, 16-bit ΣΔ channel, 5 K
  //    overtemperature, factory-trimmed bridge).
  util::Rng rng{2026};
  cta::CtaAnemometer anemometer{maf::MafSpec{}, cta::fast_isif_config(),
                                cta::CtaConfig{}, rng};

  // The water the probe is immersed in.
  maf::Environment water;
  water.fluid_temperature = util::celsius(15.0);
  water.pressure = util::bar(2.0);

  // 2. Commission: settle the loop at zero flow, null the direction channel.
  water.speed = util::metres_per_second(0.0);
  anemometer.commission(water);

  // 3. Calibrate: run a few known speeds and fit U² = A + B·vⁿ.
  std::vector<cta::CalPoint> points;
  for (double v : {0.0, 0.3, 0.8, 1.5, 2.5}) {
    water.speed = util::metres_per_second(v);
    anemometer.run(util::Seconds{2.0}, water);
    points.push_back(cta::CalPoint{v, anemometer.bridge_voltage()});
  }
  const cta::KingFit fit = cta::fit_kings_law(points);
  std::printf("calibrated King's law: A=%.4f  B=%.4f  n=%.3f\n", fit.a, fit.b,
              fit.n);

  // 4. Measure an "unknown" flow.
  cta::FlowEstimator estimator{fit, util::metres_per_second(2.5),
                               water.fluid_temperature};
  water.speed = util::metres_per_second(1.1);
  anemometer.run(util::Seconds{25.0}, water);  // let the 0.1 Hz filter settle
  const cta::FlowReading reading = estimator.read(anemometer);

  std::printf("measured: %.1f cm/s (%s), bridge voltage %.3f V\n",
              util::to_centimetres_per_second(reading.speed),
              reading.direction >= 0 ? "forward" : "reverse",
              reading.bridge_voltage);
  std::printf("true:     110.0 cm/s forward\n");
  return 0;
}
