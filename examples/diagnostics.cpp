// diagnostics — field-maintenance tour: power-up self-test of the ISIF input
// channels over the test bus (paper §3), calibration persistence (the
// EEPROM record), and the health monitor catching a membrane failure during
// an overpressure event.
#include <cstdio>
#include <sstream>

#include "core/calibration_io.hpp"
#include "core/estimator.hpp"
#include "core/health.hpp"
#include "core/rig.hpp"
#include "isif/selftest.hpp"

int main() {
  using namespace aqua;
  using util::Seconds;

  util::Rng rng{31};
  cta::CtaAnemometer anemometer{maf::MafSpec{}, cta::fast_isif_config(),
                                cta::CtaConfig{}, rng};

  // --- 1. power-up: channel self-test over the test bus ----------------------
  std::puts("power-up self-test (sine IP -> channel -> Goertzel):");
  for (int ch = 0; ch < 2; ++ch) {
    const auto result =
        isif::run_channel_self_test(anemometer.platform().channel(ch));
    std::printf("  channel %d: transfer %.4f (%+.2f%%) -> %s\n", ch,
                result.measured_gain, result.gain_error * 100.0,
                result.pass ? "PASS" : "FAIL");
  }

  // --- 2. restore the calibration from the EEPROM record ---------------------
  std::stringstream eeprom;
  cta::save_calibration(
      eeprom, cta::CalibrationRecord{cta::KingFit{0.3977, 1.2541, 0.4993, 0.002},
                                     util::metres_per_second(2.5),
                                     util::celsius(15.0), "vinci-line-3"});
  const auto record = cta::load_calibration(eeprom);
  std::printf("\nloaded calibration '%s': A=%.4f B=%.4f n=%.3f\n",
              record.sensor_id.c_str(), record.fit.a, record.fit.b,
              record.fit.n);
  cta::FlowEstimator estimator{record.fit, record.full_scale,
                               record.calibration_temperature};

  // --- 3. normal operation under the health monitor --------------------------
  maf::Environment water;
  water.fluid_temperature = util::celsius(15.0);
  water.pressure = util::bar(2.0);
  water.speed = util::metres_per_second(0.0);
  anemometer.commission(water);

  cta::HealthMonitor health;
  water.speed = util::metres_per_second(0.9);
  anemometer.run(Seconds{20.0}, water);  // let the 0.1 Hz output filter settle
  std::puts("\nmonitoring (0.9 m/s, healthy line):");
  for (int i = 0; i < 5; ++i) {
    anemometer.run(Seconds{1.0}, water);
    const auto reading = estimator.read(anemometer);
    const auto faults = health.assess(anemometer, reading, Seconds{1.0});
    std::printf("  t=%2ds  %6.1f cm/s  faults: %s\n", i + 1,
                util::to_centimetres_per_second(reading.speed),
                faults.empty() ? "none" : cta::fault_name(faults[0]).c_str());
  }

  // --- 4. a catastrophic overpressure event ----------------------------------
  std::puts("\n[EVENT] 120 bar surge hits the line...");
  water.pressure = util::bar(120.0);
  anemometer.run(Seconds{0.5}, water);
  water.pressure = util::bar(2.0);
  anemometer.run(Seconds{0.5}, water);
  const auto reading = estimator.read(anemometer);
  const auto faults = health.assess(anemometer, reading, Seconds{1.0});
  std::printf("health after the event: %s —", health.healthy() ? "OK" : "FAULT");
  for (const auto f : faults) std::printf(" %s", cta::fault_name(f).c_str());
  std::puts("");

  // --- 5. pull the blackbox: what did the sensor live through? ---------------
  std::puts("\nflight recorder (the sensor's own history around the fault):");
  std::fputs(anemometer.flight().dump_text().c_str(), stdout);
  std::puts("=> dispatch maintenance: sensor head replacement required.");
  return 0;
}
