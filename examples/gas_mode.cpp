// gas_mode — the MAF die's original life (paper §2: "this MAF sensor was
// originally designed for automotive but is also suitable for all
// applications of flow control of gaseous and fluid media"). The same die,
// platform and loop measure air flow: higher overtemperature (no bubbles, no
// scaling to worry about), far lower film coefficients, larger dynamic range.
#include <cstdio>
#include <vector>

#include "core/calibration.hpp"
#include "core/cta.hpp"
#include "core/estimator.hpp"
#include "core/rig.hpp"

int main() {
  using namespace aqua;

  // Air practice: a hot wire runs a large overtemperature for sensitivity —
  // impossible in water (bubbles), routine in air.
  cta::CtaConfig cfg;
  cfg.overtemperature = util::kelvin(60.0);
  cfg.commissioning_temperature = util::celsius(25.0);

  util::Rng rng{404};
  cta::CtaAnemometer anemometer{maf::MafSpec{}, cta::fast_isif_config(), cfg,
                                rng};

  maf::Environment air;
  air.medium = phys::Medium::kAir;
  air.fluid_temperature = util::celsius(25.0);
  air.pressure = util::bar(1.01325);
  air.dissolved_gas_saturation = 0.0;

  air.speed = util::metres_per_second(0.0);
  anemometer.commission(air);

  // Calibrate over an automotive-intake-like range (0-20 m/s).
  std::vector<cta::CalPoint> points;
  for (double v : {0.0, 1.0, 3.0, 7.0, 12.0, 20.0}) {
    air.speed = util::metres_per_second(v);
    anemometer.run(util::Seconds{2.0}, air);
    points.push_back(cta::CalPoint{v, anemometer.bridge_voltage()});
    std::printf("cal: %5.1f m/s -> U = %.3f V  (heater at %.1f C)\n", v,
                anemometer.bridge_voltage(),
                util::to_celsius(anemometer.die().temperatures().heater_a));
  }
  const cta::KingFit fit = cta::fit_kings_law(points);
  std::printf("\nKing fit in air: A=%.4f B=%.4f n=%.3f\n", fit.a, fit.b, fit.n);

  // Measure a few unknowns.
  std::puts("\nmeasuring:");
  for (double v : {0.5, 5.0, 15.0}) {
    air.speed = util::metres_per_second(v);
    anemometer.run(util::Seconds{2.0}, air);
    const double measured = fit.velocity(anemometer.bridge_voltage());
    std::printf("  true %5.1f m/s -> measured %5.2f m/s (%.1f%% error)\n", v,
                measured, 100.0 * (measured - v) / (v > 0 ? v : 1.0));
  }

  std::puts(
      "\nnote: in water the same die runs at 5 K overtemperature and ~100x "
      "higher film\ncoefficients — the reason the paper needed reduced "
      "overtemperature and pulsed drive.");
  return 0;
}
