// Microbenchmarks (google-benchmark) for the hot kernels of the simulation
// and conditioning stack: justify that full-campaign simulations (hundreds of
// simulated seconds at the modulator clock) complete in minutes.
#include <benchmark/benchmark.h>

#include "analog/sigma_delta.hpp"
#include "core/cta.hpp"
#include "core/rig.hpp"
#include "dsp/biquad.hpp"
#include "dsp/cic.hpp"
#include "dsp/fir.hpp"
#include "dsp/pid.hpp"
#include "hydro/network.hpp"
#include "isif/channel.hpp"
#include "maf/die.hpp"

namespace {

using namespace aqua;

void BM_BiquadCascade(benchmark::State& state) {
  auto filter = dsp::design_butterworth_lowpass(
      static_cast<int>(state.range(0)), util::hertz(100.0), util::hertz(10e3));
  double x = 0.1;
  for (auto _ : state) {
    x = filter.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_BiquadCascade)->Arg(2)->Arg(4)->Arg(8);

void BM_Fir(benchmark::State& state) {
  dsp::FirFilter fir{dsp::design_fir_lowpass(
      static_cast<std::size_t>(state.range(0)), util::hertz(100.0),
      util::hertz(10e3))};
  double x = 0.1;
  for (auto _ : state) {
    x = fir.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Fir)->Arg(16)->Arg(64)->Arg(256);

void BM_CicPush(benchmark::State& state) {
  dsp::CicDecimator cic{3, static_cast<int>(state.range(0))};
  int bit = 1;
  for (auto _ : state) {
    bit = -bit;
    benchmark::DoNotOptimize(cic.push(bit));
  }
}
BENCHMARK(BM_CicPush)->Arg(32)->Arg(128);

void BM_PiUpdate(benchmark::State& state) {
  dsp::PidController pi{{0.6, 30.0, 0.0}, {0.0, 1.0}, util::hertz(2000.0)};
  double e = 0.01;
  for (auto _ : state) {
    e = -e;
    benchmark::DoNotOptimize(pi.update(e));
  }
}
BENCHMARK(BM_PiUpdate);

void BM_SigmaDeltaStep(benchmark::State& state) {
  analog::SigmaDeltaModulator sd{{}, util::Rng{1}};
  double v = 0.1;
  for (auto _ : state) {
    v = -v;
    benchmark::DoNotOptimize(sd.step(util::Volts{v}));
  }
}
BENCHMARK(BM_SigmaDeltaStep);

void BM_ChannelTick(benchmark::State& state) {
  isif::InputChannel ch{isif::ChannelConfig{}, util::Rng{2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.tick(util::millivolts(3.0)));
  }
}
BENCHMARK(BM_ChannelTick);

void BM_MafDieStep(benchmark::State& state) {
  maf::MafDie die{maf::MafSpec{}};
  maf::Environment env;
  env.speed = util::metres_per_second(1.0);
  die.set_heater_powers(util::milliwatts(5.0), util::milliwatts(5.0),
                        util::milliwatts(1.0));
  for (auto _ : state) {
    die.step(util::Seconds{4e-6}, env);
    benchmark::DoNotOptimize(die.heater_a_resistance());
  }
}
BENCHMARK(BM_MafDieStep);

void BM_FullAnemometerTick(benchmark::State& state) {
  util::Rng rng{3};
  cta::CtaAnemometer anemo{maf::MafSpec{}, cta::fast_isif_config(),
                           cta::CtaConfig{}, rng};
  maf::Environment env;
  env.speed = util::metres_per_second(1.0);
  for (auto _ : state) {
    anemo.tick(env);
    benchmark::DoNotOptimize(anemo.bridge_voltage());
  }
  state.counters["sim_s_per_wall_s"] = benchmark::Counter(
      1.0 / 64e3, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FullAnemometerTick);

void BM_NetworkSolve(benchmark::State& state) {
  hydro::WaterNetwork net;
  const auto res = net.add_reservoir(55.0);
  std::vector<hydro::WaterNetwork::NodeId> nodes;
  const auto n_nodes = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n_nodes; ++i)
    nodes.push_back(net.add_junction(0.0, 0.002));
  (void)net.add_pipe(res, nodes[0], util::metres(300.0),
                     util::millimetres(200.0));
  for (std::size_t i = 1; i < nodes.size(); ++i)
    (void)net.add_pipe(nodes[i - 1], nodes[i], util::metres(300.0),
                       util::millimetres(120.0));
  for (std::size_t i = 2; i < nodes.size(); i += 2)
    (void)net.add_pipe(nodes[i - 2], nodes[i], util::metres(500.0),
                       util::millimetres(80.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.solve());
  }
}
BENCHMARK(BM_NetworkSolve)->Arg(6)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
