// Microbenchmarks (google-benchmark) for the hot kernels of the simulation
// and conditioning stack: justify that full-campaign simulations (hundreds of
// simulated seconds at the modulator clock) complete in minutes.
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "analog/amplifier.hpp"
#include "analog/sigma_delta.hpp"
#include "core/cta.hpp"
#include "core/rig.hpp"
#include "dsp/biquad.hpp"
#include "dsp/cic.hpp"
#include "dsp/fir.hpp"
#include "dsp/pid.hpp"
#include "hydro/network.hpp"
#include "isif/channel.hpp"
#include "maf/die.hpp"
#include "simd/channel_batch.hpp"

namespace {

using namespace aqua;

void BM_BiquadCascade(benchmark::State& state) {
  auto filter = dsp::design_butterworth_lowpass(
      static_cast<int>(state.range(0)), util::hertz(100.0), util::hertz(10e3));
  double x = 0.1;
  for (auto _ : state) {
    x = filter.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_BiquadCascade)->Arg(2)->Arg(4)->Arg(8);

void BM_Fir(benchmark::State& state) {
  dsp::FirFilter fir{dsp::design_fir_lowpass(
      static_cast<std::size_t>(state.range(0)), util::hertz(100.0),
      util::hertz(10e3))};
  double x = 0.1;
  for (auto _ : state) {
    x = fir.process(x * 0.999 + 0.001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Fir)->Arg(16)->Arg(64)->Arg(256);

void BM_CicPush(benchmark::State& state) {
  dsp::CicDecimator cic{3, static_cast<int>(state.range(0))};
  int bit = 1;
  for (auto _ : state) {
    bit = -bit;
    benchmark::DoNotOptimize(cic.push(bit));
  }
}
BENCHMARK(BM_CicPush)->Arg(32)->Arg(128);

void BM_PiUpdate(benchmark::State& state) {
  dsp::PidController pi{{0.6, 30.0, 0.0}, {0.0, 1.0}, util::hertz(2000.0)};
  double e = 0.01;
  for (auto _ : state) {
    e = -e;
    benchmark::DoNotOptimize(pi.update(e));
  }
}
BENCHMARK(BM_PiUpdate);

void BM_SigmaDeltaStep(benchmark::State& state) {
  analog::SigmaDeltaModulator sd{{}, util::Rng{1}};
  double v = 0.1;
  for (auto _ : state) {
    v = -v;
    benchmark::DoNotOptimize(sd.step(util::Volts{v}));
  }
}
BENCHMARK(BM_SigmaDeltaStep);

void BM_ChannelTick(benchmark::State& state) {
  isif::InputChannel ch{isif::ChannelConfig{}, util::Rng{2}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.tick(util::millivolts(3.0)));
  }
}
BENCHMARK(BM_ChannelTick);

// --- per-stage block vs scalar (DESIGN.md §9) -------------------------------
// Each pair measures the same work through the per-tick path and through the
// block path; items_per_second is modulator samples per second either way, so
// the ratio is the block speedup the CI gate in ci/bench_compare.py tracks.

constexpr int kBlock = 128;  // one default decimation frame

void BM_AmpStep(benchmark::State& state) {
  analog::InstrumentAmp amp{{}, util::hertz(256e3), util::Rng{11}};
  const util::Seconds dt{1.0 / 256e3};
  double x = 1e-3;
  for (auto _ : state) {
    x = -x;
    benchmark::DoNotOptimize(amp.step(util::Volts{x}, dt));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmpStep);

void BM_AmpBlock(benchmark::State& state) {
  analog::InstrumentAmp amp{{}, util::hertz(256e3), util::Rng{11}};
  const util::Seconds dt{1.0 / 256e3};
  std::array<double, kBlock> in{}, out{};
  for (int i = 0; i < kBlock; ++i) in[static_cast<std::size_t>(i)] =
      (i % 2 == 0) ? 1e-3 : -1e-3;
  for (auto _ : state) {
    amp.process_block(in, out, dt);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * kBlock);
}
BENCHMARK(BM_AmpBlock);

void BM_SigmaDeltaBlock(benchmark::State& state) {
  analog::SigmaDeltaModulator sd{{}, util::Rng{1}};
  std::array<double, kBlock> in{}, bits{};
  for (int i = 0; i < kBlock; ++i) in[static_cast<std::size_t>(i)] =
      (i % 2 == 0) ? 0.1 : -0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sd.process_block(in, bits));
  }
  state.SetItemsProcessed(state.iterations() * kBlock);
}
BENCHMARK(BM_SigmaDeltaBlock);

void BM_CicPushBlock(benchmark::State& state) {
  const int r = static_cast<int>(state.range(0));
  dsp::CicDecimator cic{3, r};
  std::vector<double> in(static_cast<std::size_t>(r));
  for (int i = 0; i < r; ++i) in[static_cast<std::size_t>(i)] =
      (i % 2 == 0) ? 1.0 : -1.0;
  double out = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cic.push_block(in, std::span<double>{&out, 1}));
  }
  state.SetItemsProcessed(state.iterations() * r);
}
BENCHMARK(BM_CicPushBlock)->Arg(32)->Arg(128);

// --- cross-sensor SIMD lanes in isolation (DESIGN.md §13) -------------------
// One lane group of W sensors through just the ΣΔ quantiser loop / just the
// CIC integrator cascade; items_per_second counts sensor-samples, so the
// W = 1 row is directly comparable to the scalar block rows above and the
// W > 1 rows show the per-instruction win of each stage alone. Widths beyond
// the host ISA lower to scalar code — same values, no speedup.

void BM_SigmaDeltaLanes(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::run_sigma_delta_lanes(kBlock, width));
  }
  state.SetItemsProcessed(state.iterations() * kBlock * width);
}
BENCHMARK(BM_SigmaDeltaLanes)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CicLanes(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::run_cic_lanes(kBlock, 3, kBlock, width));
  }
  state.SetItemsProcessed(state.iterations() * kBlock * width);
}
BENCHMARK(BM_CicLanes)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ChannelFrame(benchmark::State& state) {
  isif::InputChannel ch{isif::ChannelConfig{}, util::Rng{2}};
  const int frame = ch.config().decimation;
  std::vector<double> in(static_cast<std::size_t>(frame), 3e-3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.process_frame(in));
  }
  state.SetItemsProcessed(state.iterations() * frame);
}
BENCHMARK(BM_ChannelFrame);

void BM_ThermalNetworkStep(benchmark::State& state) {
  maf::MafDie die{maf::MafSpec{}};
  maf::Environment env;
  env.speed = util::metres_per_second(1.0);
  die.set_heater_powers(util::milliwatts(5.0), util::milliwatts(5.0),
                        util::milliwatts(1.0));
  for (auto _ : state) {
    die.step(util::Seconds{4e-6}, env);
    benchmark::DoNotOptimize(die.heater_a_resistance());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThermalNetworkStep);

void BM_FullAnemometerFrame(benchmark::State& state) {
  util::Rng rng{3};
  cta::CtaAnemometer anemo{maf::MafSpec{}, cta::fast_isif_config(),
                           cta::CtaConfig{}, rng};
  maf::Environment env;
  env.speed = util::metres_per_second(1.0);
  const int frame = anemo.platform().config().channel.decimation;
  for (auto _ : state) {
    anemo.tick_frame(env);
    benchmark::DoNotOptimize(anemo.bridge_voltage());
  }
  state.SetItemsProcessed(state.iterations() * frame);
}
BENCHMARK(BM_FullAnemometerFrame);

void BM_MafDieStep(benchmark::State& state) {
  maf::MafDie die{maf::MafSpec{}};
  maf::Environment env;
  env.speed = util::metres_per_second(1.0);
  die.set_heater_powers(util::milliwatts(5.0), util::milliwatts(5.0),
                        util::milliwatts(1.0));
  for (auto _ : state) {
    die.step(util::Seconds{4e-6}, env);
    benchmark::DoNotOptimize(die.heater_a_resistance());
  }
}
BENCHMARK(BM_MafDieStep);

void BM_FullAnemometerTick(benchmark::State& state) {
  util::Rng rng{3};
  cta::CtaAnemometer anemo{maf::MafSpec{}, cta::fast_isif_config(),
                           cta::CtaConfig{}, rng};
  maf::Environment env;
  env.speed = util::metres_per_second(1.0);
  for (auto _ : state) {
    anemo.tick(env);
    benchmark::DoNotOptimize(anemo.bridge_voltage());
  }
  state.counters["sim_s_per_wall_s"] = benchmark::Counter(
      1.0 / 64e3, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_FullAnemometerTick);

void BM_NetworkSolve(benchmark::State& state) {
  hydro::WaterNetwork net;
  const auto res = net.add_reservoir(55.0);
  std::vector<hydro::WaterNetwork::NodeId> nodes;
  const auto n_nodes = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n_nodes; ++i)
    nodes.push_back(net.add_junction(0.0, 0.002));
  (void)net.add_pipe(res, nodes[0], util::metres(300.0),
                     util::millimetres(200.0));
  for (std::size_t i = 1; i < nodes.size(); ++i)
    (void)net.add_pipe(nodes[i - 1], nodes[i], util::metres(300.0),
                       util::millimetres(120.0));
  for (std::size_t i = 2; i < nodes.size(); i += 2)
    (void)net.add_pipe(nodes[i - 2], nodes[i], util::metres(500.0),
                       util::millimetres(80.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.solve());
  }
}
BENCHMARK(BM_NetworkSolve)->Arg(6)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
