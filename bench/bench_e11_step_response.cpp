// E11 — §4 dynamics claim: "due to the extremely thin membrane technology
// (2 µm thickness including the passivation layer) the response times are
// reasonably short, even in water; this prevents significant heating of the
// device and ambient." Two levels:
//   (a) the die's open-loop thermal time constant — set by the membrane's
//       thermal mass, hence the thickness sweep;
//   (b) the closed-loop system response to a flow step — set by the PI
//       bandwidth once the element itself is fast enough.
#include <cmath>

#include "common.hpp"
#include "core/cta.hpp"

using namespace aqua;

namespace {

/// Open-loop 63 % heating time of the element under a power step.
double die_tau63_us(const maf::MafSpec& spec, phys::Medium medium) {
  maf::Environment env;
  env.medium = medium;
  env.fluid_temperature = util::celsius(15.0);
  env.pressure = util::bar(2.0);
  env.dissolved_gas_saturation = 0.0;
  env.speed = util::metres_per_second(1.0);

  maf::MafDie settled{spec};
  settled.set_heater_powers(util::milliwatts(5.0), util::Watts{0.0},
                            util::Watts{0.0});
  settled.settle(env);
  const double t_final = settled.temperatures().heater_a.value();

  maf::MafDie die{spec};
  die.settle(env);
  const double t0 = die.temperatures().heater_a.value();
  die.set_heater_powers(util::milliwatts(5.0), util::Watts{0.0},
                        util::Watts{0.0});
  const double target = t0 + 0.632 * (t_final - t0);
  double elapsed = 0.0;
  const double dt = 2e-7;
  while (die.temperatures().heater_a.value() < target && elapsed < 1.0) {
    die.step(util::Seconds{dt}, env);
    elapsed += dt;
  }
  return elapsed * 1e6;
}

/// Closed-loop 63 % response of the bridge voltage to a 0.5→1.5 m/s step.
double loop_tau63_ms(std::uint64_t seed) {
  util::Rng rng{seed};
  cta::CtaAnemometer anemo{maf::MafSpec{}, cta::fast_isif_config(),
                           cta::CtaConfig{}, rng};
  maf::Environment env;
  env.fluid_temperature = util::celsius(15.0);
  env.pressure = util::bar(2.0);
  env.speed = util::metres_per_second(0.5);
  anemo.run(util::Seconds{3.0}, env);
  const double u0 = anemo.bridge_voltage();

  util::Rng rng2{seed};
  cta::CtaAnemometer probe{maf::MafSpec{}, cta::fast_isif_config(),
                           cta::CtaConfig{}, rng2};
  probe.run(util::Seconds{3.0}, env);
  maf::Environment fast = env;
  fast.speed = util::metres_per_second(1.5);
  probe.run(util::Seconds{3.0}, fast);
  const double u1 = probe.bridge_voltage();

  const double target = u0 + 0.632 * (u1 - u0);
  double elapsed = 0.0;
  const double dt = anemo.tick_period().value();
  while (anemo.bridge_voltage() < target && elapsed < 2.0) {
    anemo.tick(fast);
    elapsed += dt;
  }
  return elapsed * 1e3;
}

}  // namespace

int main() {
  bench::banner("E11", "section 4 response-time claim (2 um membrane)",
                "thin membrane keeps the element's thermal response fast even "
                "in water; the system response is then set by the loop");

  util::Table die_table{"E11a: element (open-loop) 63% heating time vs membrane"};
  die_table.columns({"membrane [um]", "tau63 water [us]", "tau63 air [us]"});
  die_table.precision(1);
  double tau_2um = 0.0;
  for (double um : {1.0, 2.0, 4.0, 8.0}) {
    maf::MafSpec spec{};
    spec.membrane.thickness = util::micrometres(um);
    spec.heater_capacitance = 7.0e-8 * um / 2.0;  // mass ∝ thickness
    const double tw = die_tau63_us(spec, phys::Medium::kWater);
    const double ta = die_tau63_us(spec, phys::Medium::kAir);
    if (um == 2.0) tau_2um = tw;
    die_table.add_row({um, tw, ta});
  }
  bench::print(die_table);

  const double loop_ms = loop_tau63_ms(1111);
  std::printf(
      "\nE11b: closed-loop response to a 0.5->1.5 m/s flow step: %.0f ms "
      "(PI-bandwidth limited,\nfurther smoothed by the deliberate 0.1 Hz "
      "output filter).\n",
      loop_ms);

  std::printf(
      "\nsummary: the 2 um element heats in %.0f us in water (thermal mass "
      "scales with\nthickness), so the loop — not the MEMS element — sets the "
      "system response.\n"
      "paper shape: 'response times are reasonably short, even in water' — "
      "reproduced.\n",
      tau_2um);
  return 0;
}
