// E7 — Fig. 7 (bubble generation) and the §4 mitigation: "the generation of
// bubbles by heated wires and their sticking on the sensor surface alter the
// heat transfer ... invalidating the measurements"; fixed by "a pulsed
// voltage driving technique ... in conjunction with reduced overtemperature".
// Matrix of {continuous, pulsed} × overtemperature at 1 bar (worst case for
// outgassing), reporting bubble coverage and the induced reading error.
#include <cmath>

#include "common.hpp"
#include "core/cta.hpp"

using namespace aqua;

namespace {

struct Outcome {
  double coverage;
  double reading_error_pct;  // vs the clean reading
};

Outcome run_case(double overtemp_k, bool pulsed, std::uint64_t seed) {
  cta::CtaConfig cfg;
  cfg.overtemperature = util::kelvin(overtemp_k);
  if (pulsed) {
    cfg.pulse.enabled = true;
    cfg.pulse.period = util::Seconds{0.05};
    cfg.pulse.duty = 0.35;
  }
  util::Rng rng{seed};
  cta::CtaAnemometer anemo{maf::MafSpec{}, cta::fast_isif_config(), cfg, rng};

  maf::Environment env;
  env.speed = util::metres_per_second(0.3);
  env.fluid_temperature = util::celsius(15.0);
  env.pressure = util::bar(1.0);  // low-pressure worst case
  env.dissolved_gas_saturation = 1.0;

  anemo.run(util::Seconds{3.0}, env);
  const double u_clean = anemo.bridge_voltage();
  anemo.run(util::Seconds{60.0}, env);  // a minute of exposure
  const double u_fouled = anemo.bridge_voltage();
  return Outcome{anemo.die().fouling_a().bubble_coverage(),
                 100.0 * (u_fouled - u_clean) / u_clean};
}

}  // namespace

int main() {
  bench::banner("E7", "Fig. 7 (bubbles on the heaters) + section 4 mitigation",
                "continuous bias grows insulating bubbles and invalidates the "
                "reading; pulsed drive + reduced overtemperature keep it clean");

  util::Table table{"E7: bubble coverage after 60 s at 0.3 m/s, 1 bar"};
  table.columns({"drive", "overtemp [K]", "bubble coverage [%]",
                 "reading shift [%]"});
  table.precision(2);

  double cont_hot_cov = 0.0, pulsed_hot_cov = 0.0, cool_cov = 0.0;
  std::uint64_t seed = 700;
  for (double dt : {5.0, 12.0, 22.0}) {
    for (bool pulsed : {false, true}) {
      const Outcome o = run_case(dt, pulsed, seed++);
      table.add_row({std::string(pulsed ? "pulsed (35% duty)" : "continuous"),
                     dt, o.coverage * 100.0, o.reading_error_pct});
      if (dt == 22.0 && !pulsed) cont_hot_cov = o.coverage;
      if (dt == 22.0 && pulsed) pulsed_hot_cov = o.coverage;
      if (dt == 5.0 && !pulsed) cool_cov = o.coverage;
    }
  }
  bench::print(table);

  std::printf(
      "\nsummary: continuous @22K coverage %.0f%%, pulsed @22K %.0f%%, "
      "reduced overtemp (5K) %.0f%%\n"
      "paper shape: continuous high-dT drive bubbles over and biases the "
      "reading;\npulsing reduces it and reduced overtemperature eliminates it "
      "— reproduced when\ncoverage ordering is continuous-hot > pulsed-hot > "
      "cool ≈ 0.\n",
      cont_hot_cov * 100.0, pulsed_hot_cov * 100.0, cool_cov * 100.0);
  return 0;
}
