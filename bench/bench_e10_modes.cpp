// E10 — §2 operating-mode comparison: "constant current, constant power, or
// constant temperature. The former two ... feature simple circuit
// implementation while the latter ... achiev[es] more robustness respect to
// changes of the temperature of the fluid itself." Quasi-static sweeps of all
// three modes: overtemperature vs flow, and the velocity-equivalent error a
// 10 °C fluid-temperature shift induces in each mode's measurand.
#include <cmath>

#include "common.hpp"
#include "core/drive_modes.hpp"

using namespace aqua;

namespace {

maf::Environment water(double v, double t_c) {
  maf::Environment env;
  env.speed = util::metres_per_second(v);
  env.fluid_temperature = util::celsius(t_c);
  env.pressure = util::bar(2.0);
  return env;
}

}  // namespace

int main() {
  bench::banner("E10", "section 2 operating modes",
                "CT holds the wire overtemperature; CC/CP let it collapse with "
                "flow and drift with the fluid temperature");

  maf::MafDie die{maf::MafSpec{}};
  const cta::CtaConfig cfg{};

  util::Table sweep{"E10a: overtemperature vs flow per mode (fluid 15 C)"};
  sweep.columns({"flow [cm/s]", "CT dT [K]", "CC dT [K]", "CP dT [K]"});
  sweep.precision(2);
  for (double cm : {5.0, 25.0, 100.0, 250.0}) {
    const double v = cm / 100.0;
    const auto ct = cta::solve_constant_temperature(die, water(v, 15.0), cfg);
    const auto cc =
        cta::solve_constant_current(die, water(v, 15.0), util::amperes(0.010));
    const auto cp =
        cta::solve_constant_power(die, water(v, 15.0), util::watts(0.004));
    sweep.add_row({cm, ct.overtemperature.value(), cc.overtemperature.value(),
                   cp.overtemperature.value()});
  }
  bench::print(sweep);

  // Velocity-equivalent fluid-temperature sensitivity at 1 m/s, +10 °C.
  const auto ct_u = [&](double v, double t) {
    return cta::solve_constant_temperature(die, water(v, t), cfg).supply_v;
  };
  const auto cc_r = [&](double v, double t) {
    (void)cta::solve_constant_current(die, water(v, t), util::amperes(0.010));
    return die.heater_a_resistance().value();
  };
  const auto cp_r = [&](double v, double t) {
    (void)cta::solve_constant_power(die, water(v, t), util::watts(0.004));
    return die.heater_a_resistance().value();
  };
  const double ct_err = std::abs(ct_u(1.0, 25.0) - ct_u(1.0, 15.0)) /
                        ((ct_u(1.1, 15.0) - ct_u(0.9, 15.0)) / 0.2);
  const double cc_err = std::abs(cc_r(1.0, 25.0) - cc_r(1.0, 15.0)) /
                        (std::abs(cc_r(1.1, 15.0) - cc_r(0.9, 15.0)) / 0.2);
  const double cp_err = std::abs(cp_r(1.0, 25.0) - cp_r(1.0, 15.0)) /
                        (std::abs(cp_r(1.1, 15.0) - cp_r(0.9, 15.0)) / 0.2);

  util::Table robust{"E10b: apparent velocity error from a +10 C fluid shift at 1 m/s"};
  robust.columns({"mode", "raw velocity error [m/s]", "error [%FS]"});
  robust.precision(2);
  robust.add_row({std::string("constant temperature"), ct_err, ct_err / 2.5 * 100.0});
  robust.add_row({std::string("constant current"), cc_err, cc_err / 2.5 * 100.0});
  robust.add_row({std::string("constant power"), cp_err, cp_err / 2.5 * 100.0});
  bench::print(robust);

  std::printf(
      "\nsummary: CC/CP are %.0fx / %.0fx more fluid-temperature sensitive "
      "than CT;\nCT also keeps the wire overtemperature flat across the flow "
      "range (sensitivity preserved).\n"
      "paper shape: CT chosen for robustness to fluid temperature — "
      "reproduced.\n",
      cc_err / ct_err, cp_err / ct_err);
  return 0;
}
