// E14 — Fig. 4 input channel: instrument amplifier → anti-alias LPF → "16
// bits Sigma Delta ADC" → digital decimation. We characterise the channel's
// effective resolution (noise floor, ENOB) versus the CIC decimation ratio
// and show the noise budget that supports the paper's 16-bit figure.
#include <cmath>

#include "common.hpp"
#include "isif/channel.hpp"
#include "util/stats.hpp"

using namespace aqua;

namespace {

struct ChannelNoise {
  double mean_v;
  double sigma_v;
  double enob;
};

ChannelNoise measure(int decimation, double input_mv, std::uint64_t seed) {
  isif::ChannelConfig cfg;
  cfg.decimation = decimation;
  isif::InputChannel ch{cfg, util::Rng{seed}};
  util::RunningStats stats;
  const int blocks = 4000;
  int n = 0;
  for (int i = 0; i < cfg.decimation * blocks; ++i) {
    if (auto s = ch.tick(util::millivolts(input_mv))) {
      if (++n > 60) stats.add(s->value);  // skip the pipeline fill-in
    }
  }
  // ENOB over the ±FS input range from the observed noise sigma.
  const double input_fs = cfg.adc.full_scale.value() / cfg.amp.gain;
  const double enob =
      std::log2(2.0 * input_fs / std::max(stats.stddev(), 1e-12)) - 1.79;
  return ChannelNoise{stats.mean(), stats.stddev(), enob};
}

}  // namespace

int main() {
  bench::banner("E14", "Fig. 4 input channel (16-bit Sigma-Delta ADC)",
                "the conditioned channel resolves at the 16-bit level after "
                "decimation");

  util::Table table{"E14: channel noise vs CIC decimation (10 mV DC input)"};
  table.columns({"decimation R", "output rate [Hz]", "sigma in-referred [uV]",
                 "ENOB [bits]"});
  table.precision(2);

  double enob_at_128 = 0.0;
  for (int r : {32, 64, 128, 256}) {
    const auto n = measure(r, 10.0, 1400 + r);
    if (r == 128) enob_at_128 = n.enob;
    table.add_row({static_cast<long long>(r), 256e3 / r, n.sigma_v * 1e6,
                   n.enob});
  }
  bench::print(table);

  // Linearity spot-check across the input range at the paper's OSR.
  util::Table lin{"E14b: static transfer at R = 128"};
  lin.columns({"input [mV]", "mean reading [mV]", "error [uV]"});
  lin.precision(3);
  for (double mv : {-40.0, -10.0, 0.0, 10.0, 40.0}) {
    const auto n = measure(128, mv, 1500 + static_cast<int>(mv));
    lin.add_row({mv, n.mean_v * 1e3, (n.mean_v - mv * 1e-3) * 1e6});
  }
  bench::print(lin);

  std::printf(
      "\nsummary: ENOB grows with decimation and reaches %.1f bits at the "
      "channel's R = 128\noperating point (the residual offset is the "
      "auto-zeroed amplifier, not the ADC).\n"
      "paper shape: a 16-bit-class conversion chain out of a 1-bit modulator "
      "— reproduced.\n",
      enob_at_128);
  return 0;
}
