// E3 — §5 repeatability claim: "repeatability roughly ±1% respect to the full
// scale". The line is driven away from a target setpoint and back, from above
// and from below, and the settled readings at the target are compared.
#include <cmath>

#include "common.hpp"
#include "util/stats.hpp"

using namespace aqua;

int main() {
  bench::banner("E3", "section 5 repeatability figure",
                "repeatability roughly ±1% of the 0-250 cm/s full scale");

  cta::VinciRig rig{bench::standard_rig(303)};
  const cta::KingFit fit = bench::commission_and_calibrate(rig);
  cta::FlowEstimator estimator{fit, bench::full_scale(),
                               rig.line().temperature()};

  util::Table table{"E3: repeated approaches to each target"};
  table.columns({"target [cm/s]", "approaches", "mean [cm/s]",
                 "spread ± [cm/s]", "spread [%FS]"});
  table.precision(3);

  double worst_fs = 0.0;
  for (double target_cm : {50.0, 125.0, 200.0}) {
    const double target = target_cm / 100.0;
    util::RunningStats readings;
    for (int rep = 0; rep < 6; ++rep) {
      // Alternate approach direction: from ~40 % below and ~40 % above.
      const double away = rep % 2 == 0 ? target * 0.6 : target * 1.4;
      sim::Schedule leave{away};
      leave.hold(util::Seconds{6.0});
      rig.line().set_speed_schedule(leave);
      rig.run(util::Seconds{6.0});

      sim::Schedule back{target};
      back.hold(util::Seconds{60.0});
      rig.line().set_speed_schedule(back);
      rig.run(util::Seconds{22.0});  // loop + output filter settle
      readings.add(util::to_centimetres_per_second(
          estimator.read(rig.anemometer()).speed));
    }
    const double spread_fs = readings.half_span() / 250.0 * 100.0;
    worst_fs = std::max(worst_fs, spread_fs);
    table.add_row({target_cm, static_cast<long long>(readings.count()),
                   readings.mean(), readings.half_span(), spread_fs});
  }
  bench::print(table);

  std::printf(
      "\nsummary: worst repeatability spread ±%.2f %%FS across targets\n"
      "paper: roughly ±1 %%FS — reproduced when the worst spread is of that "
      "order.\n",
      worst_fs);
  return 0;
}
