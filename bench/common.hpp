// common.hpp — shared scaffolding for the experiment binaries: the standard
// rig configuration used across experiments, a calibrated estimator factory,
// and uniform report headers so every bench prints "paper vs measured" rows.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "core/rig.hpp"
#include "sim/schedule.hpp"
#include "util/table.hpp"

namespace aqua::bench {

/// The evaluation campaign's full scale (paper §5: 0–250 cm/s).
inline util::MetresPerSecond full_scale() { return util::metres_per_second(2.5); }

/// Standard rig: Vinci-station-like line, fast ISIF preset, default CTA.
inline cta::RigConfig standard_rig(std::uint64_t seed = 42) {
  cta::RigConfig cfg;
  cfg.isif = cta::fast_isif_config();
  cfg.line.turbulence_intensity = 0.02;
  cfg.line.valve_tau = util::Seconds{1.0};
  cfg.seed = seed;
  return cfg;
}

/// Calibration speeds used by the campaign (m/s, mean line velocity).
inline std::vector<double> calibration_speeds() {
  return {0.0, 0.1, 0.25, 0.5, 0.9, 1.4, 2.0, 2.5};
}

/// Commissions the rig and runs the King's-law calibration sweep.
inline cta::KingFit commission_and_calibrate(cta::VinciRig& rig) {
  rig.commission(util::Seconds{2.0});
  const auto speeds = calibration_speeds();
  return rig.calibrate(speeds, util::Seconds{1.5});
}

/// Report banner: experiment id, the paper artefact it regenerates, and what
/// the paper reports — so the console output reads like EXPERIMENTS.md rows.
inline void banner(const std::string& id, const std::string& artefact,
                   const std::string& paper_claim) {
  std::cout << "\n================================================================\n"
            << id << " — reproduces " << artefact << "\n"
            << "paper: " << paper_claim << "\n"
            << "================================================================\n";
}

inline void print(const util::Table& table) { table.print(std::cout); }

}  // namespace aqua::bench
