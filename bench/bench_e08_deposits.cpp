// E8 — Fig. 8 (calcium-carbonate deposit, Eq. 3) and the §5 long-term result:
// "the sensor proved no corrosion or pollution on the surface after several
// months of test and no deposit of calcium carbonate." Months-scale
// quasi-static runs over {bare, SiN-passivated} surfaces × overtemperature,
// in hard Tuscan water, tracking deposit growth and the drift of the CT
// operating point.
#include <cmath>

#include "common.hpp"
#include "core/drive_modes.hpp"

using namespace aqua;

namespace {

struct Case {
  const char* label;
  double reactivity;  // 1 = bare, 0.02 = SiN passivation
  double overtemp_k;
};

}  // namespace

int main() {
  bench::banner("E8", "Fig. 8 (CaCO3 deposit) + section 5 months-long soak",
                "bare hot surfaces scale in hard water; the SiN-passivated, "
                "low-overtemperature sensor shows no deposit after months");

  const Case cases[] = {
      {"bare, dT=25K", 1.0, 25.0},
      {"bare, dT=5K", 1.0, 5.0},
      {"SiN passivated, dT=25K", 0.02, 25.0},
      {"SiN passivated, dT=5K (paper)", 0.02, 5.0},
  };

  maf::Environment env;
  env.speed = util::metres_per_second(0.8);
  env.fluid_temperature = util::celsius(15.0);
  env.pressure = util::bar(2.5);
  env.chemistry = phys::WaterChemistry{320.0, 260.0, 7.9};  // hard water

  util::Table table{"E8: 120 days in hard water (quasi-static)"};
  table.columns({"surface / drive", "deposit @30d [um]", "deposit @120d [um]",
                 "CT supply drift [%]"});
  table.precision(3);

  double bare_hot_drift = 0.0, paper_drift = 0.0;
  for (const Case& c : cases) {
    maf::MafSpec spec{};
    spec.fouling.scaling.surface_reactivity = c.reactivity;
    maf::MafDie die{spec};
    cta::CtaConfig cfg;
    cfg.overtemperature = util::kelvin(c.overtemp_k);

    const auto before = cta::solve_constant_temperature(die, env, cfg);
    const double wall_k = env.fluid_temperature.value() + c.overtemp_k;
    double d30 = 0.0;
    for (int hour = 0; hour < 120 * 24; ++hour) {
      die.fouling_a().step(util::Seconds{3600.0}, util::Kelvin{wall_k}, env);
      if (hour == 30 * 24 - 1) d30 = die.fouling_a().deposit_thickness();
    }
    const double d120 = die.fouling_a().deposit_thickness();
    const auto after = cta::solve_constant_temperature(die, env, cfg);
    const double drift_pct =
        100.0 * (after.supply_v - before.supply_v) / before.supply_v;
    if (c.reactivity == 1.0 && c.overtemp_k == 25.0) bare_hot_drift = drift_pct;
    if (c.reactivity == 0.02 && c.overtemp_k == 5.0) paper_drift = drift_pct;
    table.add_row({std::string(c.label), d30 * 1e6, d120 * 1e6, drift_pct});
  }
  bench::print(table);

  std::printf(
      "\nsummary: bare hot surface drifts %.1f%% from scaling; the paper's "
      "configuration\n(SiN passivation + reduced overtemperature) drifts "
      "%.2f%% with no measurable deposit.\n"
      "paper shape: 'no deposit of calcium carbonate' after months on the "
      "real sensor — reproduced.\n",
      bare_hot_drift, paper_drift);
  return 0;
}
