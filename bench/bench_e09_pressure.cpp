// E9 — §5 pressure robustness: "pressure variance from 0 up to 3 bar with
// peaks of 7 bar", plus the §2 packaging argument that the organic backside
// fill gives "enhanced stability against water pressure". A pressure
// staircase with a 7-bar water-hammer peak runs under constant flow; we
// report the reading disturbance and the membrane safety factor, then show
// the unfilled counterexample.
#include <cmath>

#include "common.hpp"
#include "phys/membrane.hpp"
#include "util/stats.hpp"

using namespace aqua;

int main() {
  bench::banner("E9", "section 5 pressure campaign (0-3 bar, 7 bar peaks)",
                "readings unaffected across the pressure range; membrane "
                "survives thanks to the filled cavity");

  cta::VinciRig rig{bench::standard_rig(909)};
  const cta::KingFit fit = bench::commission_and_calibrate(rig);
  cta::FlowEstimator estimator{fit, bench::full_scale(),
                               rig.line().temperature()};

  sim::Schedule speed{1.0};
  speed.hold(util::Seconds{200.0});
  rig.line().set_speed_schedule(speed);

  sim::Schedule pressure{util::bar(0.5).value()};
  for (double b : {1.0, 2.0, 3.0})
    pressure.step_to(util::bar(b).value(), util::Seconds{20.0});
  pressure.step_to(util::bar(7.0).value(), util::Seconds{5.0});  // the peak
  pressure.step_to(util::bar(2.0).value(), util::Seconds{20.0});
  rig.line().set_pressure_schedule(pressure);

  rig.run(util::Seconds{20.0});  // settle at the first level

  util::Table table{"E9: reading vs line pressure at constant 100 cm/s"};
  table.columns({"t [s]", "pressure [bar]", "MAF [cm/s]", "membrane SF",
                 "intact"});
  table.precision(2);

  util::RunningStats readings;
  const maf::MafSpec spec{};  // for the safety-factor computation
  for (int block = 0; block < 17; ++block) {
    rig.run(util::Seconds{4.0});
    const double reading = util::to_centimetres_per_second(
        estimator.read(rig.anemometer()).speed);
    readings.add(reading);
    table.add_row({20.0 + (block + 1) * 4.0, util::to_bar(rig.line().pressure()),
                   reading,
                   phys::pressure_safety_factor(spec.membrane,
                                                rig.line().pressure()),
                   std::string(rig.anemometer().status().membrane_intact
                                   ? "yes"
                                   : "NO")});
  }
  bench::print(table);

  // Counterexample: the unfilled membrane at the same pressures.
  maf::MafSpec unfilled{};
  unfilled.membrane.backside_filled = false;
  const double sf_unfilled_3bar =
      phys::pressure_safety_factor(unfilled.membrane, util::bar(3.0));

  std::printf(
      "\nsummary: reading spread ±%.2f cm/s across 0.5→7 bar; filled-membrane "
      "safety factor\nstays ≥ %.1f at 7 bar and the die survives. Unfilled "
      "membrane at 3 bar: SF = %.2f (< 2, breaks).\n"
      "paper shape: pressure-insensitive readings and survival to 7 bar via "
      "the filled cavity — reproduced.\n",
      readings.half_span(),
      phys::pressure_safety_factor(spec.membrane, util::bar(7.0)),
      sf_unfilled_3bar);
  return 0;
}
