// E1 — Fig. 11 "Water speed evaluation data": staircase sweep of the line
// from 0 to 250 cm/s and back down, with the MAF+ISIF reading plotted against
// the Promag-class reference. The paper's figure shows the two series
// tracking each other over the full range; we print the same series plus the
// error in % of full scale.
#include "common.hpp"

using namespace aqua;

int main() {
  bench::banner("E1", "Fig. 11 (water speed evaluation data)",
                "MAF reading tracks the magmeter reference over 0-250 cm/s");

  cta::VinciRig rig{bench::standard_rig(101)};
  const cta::KingFit fit = bench::commission_and_calibrate(rig);
  cta::FlowEstimator estimator{fit, bench::full_scale(),
                               rig.line().temperature()};

  // Staircase up then down, as a station operator would drive the valve.
  std::vector<double> levels;
  for (double cm = 0.0; cm <= 250.0; cm += 25.0) levels.push_back(cm / 100.0);
  for (double cm = 225.0; cm >= 0.0; cm -= 50.0) levels.push_back(cm / 100.0);

  const util::Seconds dwell{10.0};
  sim::Schedule speed{0.0};
  speed.staircase(levels, dwell);
  rig.line().set_speed_schedule(speed);

  util::Table table{"E1: speed evaluation series (one row per dwell)"};
  table.columns({"t [s]", "setpoint [cm/s]", "reference [cm/s]",
                 "MAF [cm/s]", "error [%FS]"});
  table.precision(2);

  util::RunningStats error_stats;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    rig.run(dwell);
    const auto reading = estimator.read(rig.anemometer());
    const double ref_cm = util::to_centimetres_per_second(rig.magmeter_reading());
    const double maf_cm = util::to_centimetres_per_second(reading.speed);
    const double err_fs = (maf_cm - ref_cm) / 250.0 * 100.0;
    error_stats.add(err_fs);
    table.add_row({(static_cast<double>(i) + 1.0) * dwell.value(),
                   levels[i] * 100.0, ref_cm, maf_cm, err_fs});
  }
  bench::print(table);

  std::printf(
      "\nsummary: mean error %+.2f %%FS, worst |error| %.2f %%FS over %zu dwells\n"
      "paper shape: both series coincide over the staircase (Fig. 11) — "
      "reproduced when worst |error| stays in the low %%FS range.\n",
      error_stats.mean(),
      std::max(std::abs(error_stats.min()), std::abs(error_stats.max())),
      levels.size());
  return 0;
}
