// E5 — §5 comparison against commercial meters: the Promag-50-class magmeter
// ("resolution lower than ±0.5% FS ... slightly higher noise [for the MAF]
// but dramatically reduces the cost of more than one order of magnitude") and
// turbine-wheel devices ("same accuracy ... with cost reduction and improved
// reliability since no mechanical moving parts are exposed in water"). All
// three meters sample the same simulated line.
#include <cmath>

#include "baseline/venturi.hpp"
#include "common.hpp"
#include "util/stats.hpp"

using namespace aqua;

namespace {

struct MeterResult {
  std::string name;
  double resolution_fs;
  double response_s;
  double low_flow_cm;  // lowest speed read within 20 %
  bool moving_parts;
  double relative_cost;
};

}  // namespace

int main() {
  bench::banner("E5", "section 5 commercial comparison",
                "MAF: slightly noisier than the magmeter, >10x cheaper; "
                "turbine accuracy without moving parts");

  cta::VinciRig rig{bench::standard_rig(505)};
  const cta::KingFit fit = bench::commission_and_calibrate(rig);
  cta::FlowEstimator estimator{fit, bench::full_scale(),
                               rig.line().temperature()};

  // --- noise at 1 m/s for all four meters on the same line ------------------
  baseline::VenturiMeter venturi{baseline::VenturiSpec{}, util::Rng{5050}};
  sim::Schedule speed{1.0};
  speed.hold(util::Seconds{120.0});
  rig.line().set_speed_schedule(speed);
  rig.run(util::Seconds{25.0});
  util::RunningStats maf, mag, turbine, dp;
  for (int b = 0; b < 50; ++b) {
    rig.run(util::Seconds{0.5});
    maf.add(util::to_centimetres_per_second(estimator.read(rig.anemometer()).speed));
    mag.add(util::to_centimetres_per_second(rig.magmeter_reading()));
    turbine.add(util::to_centimetres_per_second(rig.turbine_reading()));
    dp.add(util::to_centimetres_per_second(
        venturi.step(rig.line().mean_velocity(), util::Seconds{0.5})));
  }

  // --- low-flow floor --------------------------------------------------------
  const double turbine_stall_cm =
      util::to_centimetres_per_second(rig.turbine().stall_velocity());
  const double venturi_floor_cm =
      util::to_centimetres_per_second(venturi.noise_floor_velocity());

  MeterResult results[4] = {
      {"MAF hot-wire + ISIF", maf.half_span() / 250.0 * 100.0, 10.0 /*0.1 Hz*/,
       2.0, false, 1.0},
      {"magmeter (Promag-50 class)", mag.half_span() / 250.0 * 100.0, 0.5,
       1.0, false, rig.magmeter().spec().relative_cost},
      {"turbine wheel", turbine.half_span() / 250.0 * 100.0, 0.2,
       turbine_stall_cm, true, rig.turbine().spec().relative_cost},
      {"venturi dP (intrusive)", dp.half_span() / 250.0 * 100.0, 0.3,
       venturi_floor_cm, false, venturi.spec().relative_cost},
  };

  util::Table table{"E5: meter comparison on the same line (1 m/s operating point)"};
  table.columns({"meter", "resolution [%FS]", "response [s]",
                 "low-flow floor [cm/s]", "moving parts", "relative cost"});
  table.precision(2);
  for (const auto& r : results) {
    table.add_row({r.name, r.resolution_fs, r.response_s, r.low_flow_cm,
                   std::string(r.moving_parts ? "yes" : "no"), r.relative_cost});
  }
  bench::print(table);
  std::printf(
      "note: the venturi additionally inflicts a permanent pressure loss of "
      "%.0f Pa at 1 m/s\n(%.0f Pa at full scale) — the intrusiveness the "
      "paper's introduction argues against.\n",
      venturi.permanent_loss(util::metres_per_second(1.0)).value(),
      venturi.permanent_loss(util::metres_per_second(2.5)).value());

  std::printf(
      "\nsummary: magmeter %.2f %%FS vs MAF %.2f %%FS (magmeter better but "
      "%.0fx the cost);\nturbine resolution comparable to MAF but stalls below "
      "%.1f cm/s and wears its bearing.\n"
      "paper shape: magmeter < MAF noise, MAF cost >10x lower, turbine has "
      "moving parts — reproduced.\n",
      results[1].resolution_fs, results[0].resolution_fs,
      results[1].relative_cost, turbine_stall_cm);
  return 0;
}
