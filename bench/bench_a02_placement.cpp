// A2 — sensor-count/placement ablation for the §6 monitoring application:
// how much instrumentation does leak localisation actually need? The paper's
// economic argument is that the MEMS sensor is cheap enough to be "widely
// diffused"; this ablation quantifies what each additional probe buys, and
// closes the loop with the isolation step ("immediately localized and
// isolated"): after localisation, the feeding valve is closed and the leak
// flow collapses.
#include <cmath>
#include <vector>

#include "common.hpp"
#include "core/monitor.hpp"
#include "hydro/network.hpp"

using namespace aqua;

namespace {

struct District {
  hydro::WaterNetwork net;
  std::vector<hydro::WaterNetwork::NodeId> junctions;
  std::vector<hydro::WaterNetwork::PipeId> pipes;
};

District make_district() {
  District d;
  const auto res = d.net.add_reservoir(55.0);
  for (int i = 0; i < 6; ++i)
    d.junctions.push_back(d.net.add_junction(0.0, 0.003));
  using util::metres;
  using util::millimetres;
  const auto pipe = [&](std::size_t a, std::size_t b, double dia_mm) {
    d.pipes.push_back(d.net.add_pipe(d.junctions[a], d.junctions[b],
                                     metres(400.0), millimetres(dia_mm)));
  };
  d.pipes.push_back(
      d.net.add_pipe(res, d.junctions[0], metres(300.0), millimetres(200.0)));
  pipe(0, 1, 150.0);
  pipe(1, 2, 100.0);
  pipe(0, 3, 150.0);
  pipe(3, 4, 100.0);
  pipe(1, 4, 80.0);
  pipe(4, 5, 80.0);
  pipe(2, 5, 80.0);
  return d;
}

double top1_rate(District& d,
                 const std::vector<hydro::WaterNetwork::PipeId>& sensors,
                 util::Rng& rng) {
  cta::LeakLocalizer monitor{d.net, sensors, util::centimetres_per_second(0.7)};
  monitor.calibrate();
  int hits = 0, trials = 0;
  for (std::size_t node = 0; node < d.junctions.size(); ++node) {
    for (int rep = 0; rep < 6; ++rep) {
      const double head = d.net.node_head(d.junctions[node]);
      d.net.set_leak(d.junctions[node],
                     1e-3 / std::sqrt(std::max(head, 1.0)));
      if (!d.net.solve()) continue;
      std::vector<double> measured;
      for (auto p : sensors)
        measured.push_back(d.net.pipe_velocity(p).value() +
                           rng.gaussian(0.0, 0.007));
      ++trials;
      const auto ranked = monitor.locate(measured);
      if (!ranked.empty() && ranked[0].node == d.junctions[node]) ++hits;
      d.net.set_leak(d.junctions[node], 0.0);
      (void)d.net.solve();
    }
  }
  return 100.0 * hits / trials;
}

}  // namespace

int main() {
  bench::banner("A2", "sensor-placement ablation for section 6 monitoring",
                "each additional cheap probe buys localisation accuracy; "
                "isolation then stops the loss");

  District d = make_district();
  util::Rng rng{9200};

  util::Table table{"A2a: probes vs top-1 localisation rate (1 L/s leak)"};
  table.columns({"probes", "which pipes", "top-1 [%]"});
  table.precision(1);

  const std::vector<std::pair<std::string, std::vector<std::size_t>>> layouts{
      {"feed only", {0}},
      {"feed + 2 mains", {0, 1, 3}},
      {"feed + mains + 2 links", {0, 1, 3, 5, 6}},
      {"all 8 pipes", {0, 1, 2, 3, 4, 5, 6, 7}},
  };
  for (const auto& [label, indices] : layouts) {
    std::vector<hydro::WaterNetwork::PipeId> sensors;
    for (auto i : indices) sensors.push_back(d.pipes[i]);
    table.add_row({std::string(label),
                   static_cast<long long>(sensors.size()),
                   top1_rate(d, sensors, rng)});
  }
  bench::print(table);

  // --- isolation: close the spur feeding the located leak -------------------
  d.net.set_leak(d.junctions[5], 1.5e-3 / std::sqrt(50.0));
  (void)d.net.solve();
  const double before = d.net.leak_flow(d.junctions[5]);
  // Junction 5 is fed by pipes 6 (4→5) and 7 (2→5): close both.
  d.net.set_pipe_open(d.pipes[6], false);
  d.net.set_pipe_open(d.pipes[7], false);
  (void)d.net.solve();
  const double after = d.net.leak_flow(d.junctions[5]);
  d.net.set_pipe_open(d.pipes[6], true);
  d.net.set_pipe_open(d.pipes[7], true);

  std::printf(
      "\nA2b isolation: leak at 'fontana' loses %.2f L/s before isolation, "
      "%.2f L/s after the\nfeeding valves close — the paper's 'immediately "
      "localized and isolated'.\n"
      "\nsummary: the feed meter alone cannot localise; a handful of diffused "
      "probes reach\nnear-perfect top-1 — the economics the paper's low-cost "
      "sensor enables.\n",
      before * 1e3, after * 1e3);
  return 0;
}
