// E15 — §6 application claim: cheap insertion sensors "can be widely diffused
// all over the water distribution channels: allowing also any malfunction
// behavior (e.g. water loss in tube) ... to be immediately localized and
// isolated." A district network instrumented with MAF-class sensors (noise
// from the E2 resolution) faces injected leaks of varying size; we report
// detection and localisation rates.
#include <cmath>
#include <vector>

#include "common.hpp"
#include "core/monitor.hpp"
#include "hydro/network.hpp"

using namespace aqua;

namespace {

struct District {
  hydro::WaterNetwork net;
  std::vector<hydro::WaterNetwork::NodeId> junctions;
  std::vector<hydro::WaterNetwork::PipeId> pipes;
};

/// Reservoir feeding a 3x2 looped grid with per-node demand.
District make_district() {
  District d;
  const auto res = d.net.add_reservoir(55.0);
  for (int i = 0; i < 6; ++i)
    d.junctions.push_back(d.net.add_junction(0.0, 0.003));
  using util::metres;
  using util::millimetres;
  const auto pipe = [&](std::size_t a, std::size_t b, double dia_mm) {
    d.pipes.push_back(d.net.add_pipe(d.junctions[a], d.junctions[b],
                                     metres(400.0), millimetres(dia_mm)));
  };
  d.pipes.push_back(
      d.net.add_pipe(res, d.junctions[0], metres(300.0), millimetres(200.0)));
  pipe(0, 1, 150.0);
  pipe(1, 2, 100.0);
  pipe(0, 3, 150.0);
  pipe(3, 4, 100.0);
  pipe(1, 4, 80.0);
  pipe(4, 5, 80.0);
  pipe(2, 5, 80.0);
  return d;
}

}  // namespace

int main() {
  bench::banner("E15", "section 6 diffusive monitoring / leak localisation",
                "widely diffused cheap sensors localise water losses in the "
                "network");

  District d = make_district();
  // Sensor noise: the E2 resolution figure (~±1-2 cm/s) as 1-sigma ≈ 0.7 cm/s.
  const auto sensor_noise = util::centimetres_per_second(0.7);
  cta::LeakLocalizer monitor{d.net, d.pipes, sensor_noise};
  monitor.calibrate();

  util::Rng rng{1500};
  util::Table table{"E15: injected leaks vs detection/localisation"};
  table.columns({"leak size [L/s]", "trials", "detected [%]", "top-1 hit [%]",
                 "top-2 hit [%]"});
  table.precision(1);

  double det_1lps = 0.0, top1_1lps = 0.0;
  for (double leak_lps : {0.2, 0.5, 1.0, 2.0}) {
    int detected = 0, top1 = 0, top2 = 0, trials = 0;
    for (std::size_t node = 0; node < d.junctions.size(); ++node) {
      for (int rep = 0; rep < 4; ++rep) {
        // Choose the emitter coefficient to produce roughly the target flow.
        const double head =
            d.net.node_head(d.junctions[node]);  // healthy solution
        const double emitter =
            leak_lps * 1e-3 / std::sqrt(std::max(head, 1.0));
        d.net.set_leak(d.junctions[node], emitter);
        if (!d.net.solve()) continue;
        std::vector<double> measured;
        for (auto p : d.pipes)
          measured.push_back(d.net.pipe_velocity(p).value() +
                             rng.gaussian(0.0, sensor_noise.value()));
        ++trials;
        if (monitor.leak_detected(measured)) ++detected;
        const auto ranked = monitor.locate(measured);
        if (!ranked.empty() && ranked[0].node == d.junctions[node]) ++top1;
        if (ranked.size() > 1 && (ranked[0].node == d.junctions[node] ||
                                  ranked[1].node == d.junctions[node]))
          ++top2;
        else if (!ranked.empty() && ranked[0].node == d.junctions[node])
          ++top2;
        d.net.set_leak(d.junctions[node], 0.0);
        (void)d.net.solve();
      }
    }
    const double det_pct = 100.0 * detected / trials;
    const double top1_pct = 100.0 * top1 / trials;
    if (leak_lps == 1.0) {
      det_1lps = det_pct;
      top1_1lps = top1_pct;
    }
    table.add_row({leak_lps, static_cast<long long>(trials), det_pct, top1_pct,
                   100.0 * top2 / trials});
  }
  bench::print(table);

  std::printf(
      "\nsummary: a 1 L/s loss is detected %.0f%% of the time and localised "
      "to the right\njunction %.0f%% of the time with just %zu sensors of "
      "MAF-class resolution.\n"
      "paper shape: diffusive low-cost sensing makes losses immediately "
      "localisable — reproduced.\n",
      det_1lps, top1_1lps, d.pipes.size());
  return 0;
}
