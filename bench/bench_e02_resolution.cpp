// E2 — §5 resolution claim: "the resolution is in the range of ±0.75 cm/s to
// ±4 cm/s (worst-case), that is ±0.35% up to ±1.76%" of the 0-250 cm/s full
// scale. We hold the line at each setpoint, let the 0.1 Hz output filter
// settle, and report the half-span and sigma of the filtered reading
// converted to velocity through the local King's-law sensitivity.
#include <cmath>

#include "common.hpp"
#include "util/stats.hpp"

using namespace aqua;

int main() {
  bench::banner("E2", "section 5 resolution figures",
                "±0.75 cm/s (low flow) to ±4 cm/s (worst case) = ±0.35-1.76 %FS");

  cta::VinciRig rig{bench::standard_rig(202)};
  const cta::KingFit fit = bench::commission_and_calibrate(rig);
  cta::FlowEstimator estimator{fit, bench::full_scale(),
                               rig.line().temperature()};

  util::Table table{"E2: resolution vs operating point"};
  table.columns({"setpoint [cm/s]", "sigma [cm/s]", "half-span [cm/s]",
                 "resolution [%FS]"});
  table.precision(3);

  double worst_cm = 0.0, best_cm = 1e9;
  for (double cm : {10.0, 50.0, 100.0, 150.0, 200.0, 250.0}) {
    const double mean = cm / 100.0;
    sim::Schedule speed{mean};
    speed.hold(util::Seconds{60.0});
    rig.line().set_speed_schedule(speed);

    // Settle the loop and the 0.1 Hz filter, then observe 25 s.
    rig.run(util::Seconds{30.0});
    util::RunningStats velocity_readings;
    const int observe_blocks = static_cast<int>(25.0 / 0.5);
    for (int b = 0; b < observe_blocks; ++b) {
      rig.run(util::Seconds{0.5});
      velocity_readings.add(util::to_centimetres_per_second(
          estimator.read(rig.anemometer()).speed));
    }
    const double half_span = velocity_readings.half_span();
    worst_cm = std::max(worst_cm, half_span);
    best_cm = std::min(best_cm, half_span);
    table.add_row({cm, velocity_readings.stddev(), half_span,
                   half_span / 250.0 * 100.0});
  }
  bench::print(table);

  std::printf(
      "\nsummary: resolution spans ±%.2f to ±%.2f cm/s (±%.2f%% to ±%.2f%% FS)\n"
      "paper: ±0.75 to ±4 cm/s (±0.35%% to ±1.76%% FS); shape check: resolution\n"
      "degrades toward high flow because dU/dv compresses as v^(n-1).\n",
      best_cm, worst_cm, best_cm / 2.5, worst_cm / 2.5);
  return 0;
}
