// E4 — §2/§5 direction claim: the tandem heaters make "the measurement of the
// direction of a flow" possible and in the campaign "the flow direction was
// clearly detected". Bidirectional sweep, reporting the direction signal and
// the detected sign at each speed.
#include <cmath>

#include "common.hpp"

using namespace aqua;

int main() {
  bench::banner("E4", "section 2/5 direction detection",
                "flow direction clearly detected over the whole range");

  cta::VinciRig rig{bench::standard_rig(404)};
  rig.commission(util::Seconds{3.0});

  util::Table table{"E4: direction signal vs signed flow"};
  table.columns({"flow [cm/s]", "err_B/U [mV/V]", "detected", "correct"});
  table.precision(3);

  int correct = 0, total = 0, deadband = 0;
  const std::vector<double> speeds_cm{-250.0, -150.0, -75.0, -30.0, -10.0,
                                      -3.0,   3.0,    10.0,  30.0,  75.0,
                                      150.0,  250.0};
  for (double cm : speeds_cm) {
    maf::Environment env = rig.line().environment();
    env.speed = util::centimetres_per_second(cm);
    rig.anemometer().run(util::Seconds{4.0}, env);
    const int detected = rig.anemometer().direction();
    const int expected = cm > 0 ? 1 : -1;
    const bool ok = detected == expected;
    const bool in_deadband = detected == 0;
    correct += ok ? 1 : 0;
    deadband += in_deadband ? 1 : 0;
    ++total;
    table.add_row({cm, rig.anemometer().direction_signal() * 1e3,
                   std::string(detected > 0   ? "forward"
                               : detected < 0 ? "reverse"
                                              : "dead-band"),
                   std::string(ok ? "yes" : (in_deadband ? "(deadband)" : "NO"))});
  }
  bench::print(table);

  std::printf(
      "\nsummary: %d/%d correct sign detections (%d in the low-flow dead-band,"
      " none inverted)\n"
      "paper: direction clearly detected — reproduced when every detection\n"
      "outside the few-cm/s dead-band carries the right sign.\n",
      correct, total, deadband);
  return 0;
}
