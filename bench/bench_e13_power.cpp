// E13 — §7 "next steps" energy claim: the dedicated ASIC "features advanced
// low power techniques with deep sleep mode ... allowing the whole system to
// be supplied by rechargeable batteries (4 alkaline AA) that guarantees
// autonomy of one year for a typical sensor usage." Autonomy vs measurement
// cadence, plus the cadence that exactly meets one year.
#include <cmath>

#include "common.hpp"
#include "core/power_budget.hpp"

using namespace aqua;

int main() {
  bench::banner("E13", "section 7 battery-autonomy claim",
                "one year from 4 AA cells with deep sleep and duty-cycled "
                "measurements");

  util::Table table{"E13: autonomy vs measurement cadence (4xAA, deep sleep)"};
  table.columns({"measurements/hour", "avg power [mW]", "duty [%]",
                 "autonomy [days]"});
  table.precision(3);

  for (double cadence : {1.0, 4.0, 12.0, 30.0, 60.0, 240.0}) {
    cta::PowerBudgetSpec spec{};
    spec.measurements_per_hour = cadence;
    const auto r = cta::evaluate_power_budget(spec);
    table.add_row({cadence, r.average_power_w * 1e3, r.duty_cycle * 100.0,
                   r.autonomy_days});
  }
  bench::print(table);

  cta::PowerBudgetSpec typical{};
  const auto typical_result = cta::evaluate_power_budget(typical);
  const double year_cadence =
      cta::measurements_per_hour_for_autonomy(typical, 365.0);

  std::printf(
      "\nsummary: the 'typical usage' point (%.0f meas/h) yields %.0f days of "
      "autonomy;\nexactly one year is met at %.1f measurements/hour.\n"
      "paper shape: ~1 year from 4 AA cells at a typical monitoring cadence — "
      "reproduced.\n",
      typical.measurements_per_hour, typical_result.autonomy_days,
      year_cadence);
  return 0;
}
