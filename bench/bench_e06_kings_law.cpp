// E6 — Eq. (2), King's law: I²R = U² = (T_w − T_ref)(A + B·vⁿ), "the
// constants A, B and the exponent n are empirically determined"; "this
// nonlinearity must be compensated by a special signal conditioning". We run
// the calibration sweep, fit (A, B, n), print per-point residuals, and show
// the raw-transfer nonlinearity the conditioning has to undo.
#include <cmath>

#include "common.hpp"

using namespace aqua;

int main() {
  bench::banner("E6", "Eq. (2) King's law calibration",
                "U^2 = dT(A + B v^n): empirical A, B, n; strongly nonlinear U(v)");

  cta::VinciRig rig{bench::standard_rig(606)};
  rig.commission(util::Seconds{2.0});

  // Dense calibration sweep.
  std::vector<double> speeds;
  for (double cm : {0.0, 5.0, 10.0, 20.0, 40.0, 70.0, 100.0, 140.0, 180.0,
                    220.0, 250.0})
    speeds.push_back(cm / 100.0);
  const cta::KingFit fit = rig.calibrate(speeds, util::Seconds{1.5});

  util::Table table{"E6: calibration points vs fitted law"};
  table.columns({"v [cm/s]", "U measured [V]", "U fitted [V]",
                 "residual [mV]", "local gain dU/dv [V/(m/s)]"});
  table.precision(4);
  for (double v : speeds) {
    maf::Environment env = rig.line().environment();
    env.speed = util::metres_per_second(
        v * rig.profile_factor_at(util::metres_per_second(v)));
    const double u = rig.settled_voltage(env, util::Seconds{1.5});
    table.add_row({v * 100.0, u, fit.voltage(v), (u - fit.voltage(v)) * 1e3,
                   fit.sensitivity(v)});
  }
  bench::print(table);

  // Nonlinearity figure: best straight line error of U(v) over the range.
  const double u0 = fit.voltage(0.0), u1 = fit.voltage(2.5);
  double worst_linearity = 0.0;
  for (double v = 0.0; v <= 2.5; v += 0.05) {
    const double linear = u0 + (u1 - u0) * v / 2.5;
    worst_linearity =
        std::max(worst_linearity, std::abs(fit.voltage(v) - linear));
  }

  std::printf(
      "\nfit: A = %.4f V^2, B = %.4f V^2/(m/s)^n, n = %.3f, rms residual %.3f mV\n"
      "raw-transfer nonlinearity: worst deviation from a straight line %.1f mV "
      "(%.0f %% of the span)\n"
      "paper shape: n near 0.5 (boundary-layer convection) and a transfer so\n"
      "curved it needs dedicated conditioning — reproduced.\n",
      fit.a, fit.b, fit.n, fit.rms_residual * 1e3, worst_linearity * 1e3,
      100.0 * worst_linearity / (u1 - u0));
  return 0;
}
