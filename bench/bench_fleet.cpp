// bench_fleet — fleet co-simulation throughput, serial vs the work-stealing
// pool: 32 CTA sensors on a 32-pipe district, each integrating its ΣΔ/CIC/PI
// loop against the diurnal network solution. Reports sensors×sim-seconds per
// wall second for each mode plus a bitwise trace checksum per run — identical
// checksums across all modes are the determinism proof (same root seed ⇒
// bit-identical traces at any thread count).
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analog/amplifier.hpp"
#include "analog/sigma_delta.hpp"
#include "common.hpp"
#include "dsp/cic.hpp"
#include "fleet/fleet.hpp"
#include "isif/channel.hpp"
#include "maf/die.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simd/channel_batch.hpp"
#include "simd/lanes.hpp"
#include "state/checkpoint.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace aqua;
using util::Seconds;

struct District {
  hydro::WaterNetwork net;
  std::vector<fleet::SensorPlacement> placements;
};

// Reservoir feeding four radial chains of eight pipes each (32 pipes, one
// sensor per pipe) — the "widely diffused" deployment of paper §6. Larger
// fleets replicate this proven district: each replica is hydraulically
// independent, so solve cost stays linear and every replica converges exactly
// like the original (no giant-hub head-loss pathology).
District make_district(std::size_t replicas = 1) {
  District d;
  for (std::size_t rep = 0; rep < replicas; ++rep) {
    const auto res = d.net.add_reservoir(45.0);
    const auto hub = d.net.add_junction(2.0, 0.002);
    const auto first_pipe = d.net.pipe_count();
    d.net.add_pipe(res, hub, util::metres(200.0), util::millimetres(250.0));
    for (int chain = 0; chain < 4; ++chain) {
      auto prev = hub;
      for (int k = 0; k < 8; ++k) {
        if (d.net.pipe_count() - first_pipe >= 32) break;
        // Tapered mains: diameters shrink with the remaining demand so the
        // velocity stays turbulent even at the 0.3× night factor (the
        // solver's successive linearisation stalls in the transition regime).
        const auto next = d.net.add_junction(1.5 - 0.1 * k, 0.002);
        d.net.add_pipe(prev, next, util::metres(250.0),
                       util::millimetres(150.0 - 14.0 * k));
        prev = next;
      }
    }
  }
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p)
    d.placements.push_back(fleet::SensorPlacement{p, 0.0});
  return d;
}

constexpr std::size_t kSensorsPerReplica = 32;

struct RunResult {
  double wall_s = 0.0;
  double throughput = 0.0;  // sensors × sim-seconds per wall second
  std::uint64_t checksum = 0;
  std::size_t sensors = 0;
};

std::uint64_t trace_checksum(const fleet::FleetEngine& engine) {
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < engine.size(); ++i)
    for (const fleet::TraceSample& s : engine.node(i).trace()) {
      checksum ^= std::bit_cast<std::uint64_t>(s.bridge_voltage);
      checksum ^= std::bit_cast<std::uint64_t>(s.estimate_mps) * 0x9E37u;
      checksum ^= std::bit_cast<std::uint64_t>(s.true_mean_mps) * 0x85EBu;
    }
  return checksum;
}

// --- fleet scaling sweep ----------------------------------------------------
// The sharded epoch loop's scaling proof: a ~1k-sensor fleet run serially and
// on pools of 2/4/8, checksum-compared, plus a fleet-size completion run
// (10k by default). Sizes are env-tunable: AQUA_FLEET_SCALE_SENSORS for the
// sweep, AQUA_FLEET_XL_SENSORS for the completion run (0 skips it).
struct ScalingReport {
  std::size_t sensors = 0;
  long long epochs = 0;
  bool deterministic = true;
  /// Hardware-aware scaling efficiency: max over k ∈ {2, 4} of
  /// speedup(pool_k) / min(k, hardware_threads). Ideal is 1.0 on any
  /// machine — a 1-core box expects speedup 1 from k threads, a 2-core box
  /// expects 2 from k=2 — so a fixed CI floor (0.8) works everywhere,
  /// including hyperthreaded runners (k=2 uses real cores).
  double efficiency = 0.0;
  double pool8_over_serial = 0.0;
  std::vector<std::pair<std::string, RunResult>> modes;
  bool xl_ran = false;
  std::size_t xl_sensors = 0;
  long long xl_epochs = 0;
  double xl_wall_s = 0.0;
  std::uint64_t xl_checksum = 0;
};

std::size_t env_sensors(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long n = std::atoll(v);
  return n <= 0 ? 0 : static_cast<std::size_t>(n);
}

// One scaling-sweep run: `threads` == 0 is serial. Skips commissioning (the
// sweep times the epoch loop, and a 10k settle would dominate) and uses a
// short epoch so the whole sweep stays in budget; the determinism contract is
// load-bearing at any epoch length.
RunResult run_scaling_mode(unsigned threads, std::size_t replicas,
                           double epoch_s, long long epochs) {
  District d = make_district(replicas);
  fleet::FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 42;
  cfg.epoch = Seconds{epoch_s};
  cfg.demand_factor = fleet::diurnal_demand_pattern(Seconds{8.0});
  fleet::FleetEngine engine(d.net, d.placements, cfg);
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});

  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);

  const auto t0 = std::chrono::steady_clock::now();
  engine.run(Seconds{epoch_s * static_cast<double>(epochs)}, pool.get());
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.sensors = engine.size();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.throughput = static_cast<double>(engine.size()) * epoch_s *
                 static_cast<double>(epochs) / r.wall_s;
  r.checksum = trace_checksum(engine);
  return r;
}

ScalingReport run_scaling_sweep(unsigned hw) {
  ScalingReport rep;
  const std::size_t target = env_sensors("AQUA_FLEET_SCALE_SENSORS", 1024);
  const std::size_t replicas =
      std::max<std::size_t>(1, (target + kSensorsPerReplica - 1) /
                                   kSensorsPerReplica);
  rep.sensors = replicas * kSensorsPerReplica;
  rep.epochs = 4;
  const double epoch_s = 0.1;

  std::printf("\nfleet scaling sweep: %zu sensors, %lld epochs of %.2f s\n",
              rep.sensors, rep.epochs, epoch_s);
  std::printf("%-12s %10s %16s %18s\n", "mode", "wall [s]", "sensors*sims/s",
              "trace checksum");

  const RunResult serial = run_scaling_mode(0, replicas, epoch_s, rep.epochs);
  rep.modes.emplace_back("serial", serial);
  std::printf("%-12s %10.3f %16.1f %18llx\n", "serial", serial.wall_s,
              serial.throughput,
              static_cast<unsigned long long>(serial.checksum));

  for (unsigned threads : {2u, 4u, 8u}) {
    const RunResult r = run_scaling_mode(threads, replicas, epoch_s,
                                         rep.epochs);
    const bool same = r.checksum == serial.checksum;
    rep.deterministic = rep.deterministic && same;
    char mode[32];
    std::snprintf(mode, sizeof mode, "pool(%u)", threads);
    rep.modes.emplace_back(mode, r);

    const double speedup =
        serial.throughput > 0.0 ? r.throughput / serial.throughput : 0.0;
    if (threads == 8u) rep.pool8_over_serial = speedup;
    if (threads == 2u || threads == 4u) {
      const double ideal = std::min<double>(threads, std::max(1u, hw));
      rep.efficiency = std::max(rep.efficiency, speedup / ideal);
    }
    std::printf("%-12s %10.3f %16.1f %18llx%s\n", mode, r.wall_s,
                r.throughput, static_cast<unsigned long long>(r.checksum),
                same ? "" : "  << MISMATCH");
  }
  std::printf("scaling determinism: %s; efficiency %.2f (ideal 1.0, CI floor "
              "0.8), pool(8)/serial %.2fx\n",
              rep.deterministic ? "PASS" : "FAIL", rep.efficiency,
              rep.pool8_over_serial);

  const std::size_t xl_target = env_sensors("AQUA_FLEET_XL_SENSORS", 10016);
  if (xl_target > 0) {
    const std::size_t xl_replicas =
        std::max<std::size_t>(1, (xl_target + kSensorsPerReplica - 1) /
                                     kSensorsPerReplica);
    rep.xl_sensors = xl_replicas * kSensorsPerReplica;
    rep.xl_epochs = 2;
    const unsigned threads = std::max(1u, hw);
    std::printf("completion run: %zu sensors on pool(%u) ... ",
                rep.xl_sensors, threads);
    std::fflush(stdout);
    const RunResult xl =
        run_scaling_mode(threads, xl_replicas, epoch_s, rep.xl_epochs);
    rep.xl_ran = true;
    rep.xl_wall_s = xl.wall_s;
    rep.xl_checksum = xl.checksum;
    std::printf("%.1f s wall (%.1f sensors*sims/s), checksum %016llx\n",
                xl.wall_s, xl.throughput,
                static_cast<unsigned long long>(xl.checksum));
  }
  return rep;
}

// --- checkpoint overhead ----------------------------------------------------
// The crash-recovery tax (DESIGN.md §14): the same 32-sensor epoch loop run
// twice in this process, once plain and once writing a durable checkpoint
// (serialize + atomic temp/fsync/rename) every `interval` epochs. The
// throughput ratio is machine-independent — both sides run seconds apart in
// one binary — and CI floors it at 0.9: a checkpoint cadence of 100 epochs
// may cost at most 10 % of fleet throughput.
struct CheckpointOverhead {
  long long epochs = 0;
  long long interval = 100;
  std::size_t image_bytes = 0;     // one engine checkpoint image
  double nockpt_sps = 0.0;         // sensors × sim-s per wall-s, no checkpoints
  double ckpt_sps = 0.0;           // same run with the checkpoint cadence
  double ratio = 0.0;              // ckpt / nockpt — gated >= 0.9
};

CheckpointOverhead measure_checkpoint_overhead() {
  namespace fs = std::filesystem;
  CheckpointOverhead rep;
  rep.epochs = 200;
  rep.interval = 100;
  const double epoch_s = 0.05;

  const auto run = [&rep, epoch_s](bool checkpointing) {
    District d = make_district();
    fleet::FleetConfig cfg;
    cfg.sensor.isif = cta::coarse_isif_config();
    cfg.sensor.cta.output_cutoff = util::hertz(2.0);
    cfg.root_seed = 42;
    cfg.epoch = Seconds{epoch_s};
    cfg.demand_factor = fleet::diurnal_demand_pattern(Seconds{8.0});
    fleet::FleetEngine engine(d.net, d.placements, cfg);
    engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});

    std::optional<state::CheckpointManager> manager;
    std::string dir;
    if (checkpointing) {
      dir = (fs::temp_directory_path() / "aqua_bench_ckpt").string();
      fs::remove_all(dir);
      manager.emplace(dir, "bench", 2);
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (long long e = 1; e <= rep.epochs; ++e) {
      engine.step_epoch();
      if (manager && e % rep.interval == 0) {
        const std::vector<std::uint8_t> image = engine.checkpoint();
        rep.image_bytes = image.size();
        manager->write(static_cast<std::uint64_t>(e), image);
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (checkpointing) fs::remove_all(dir);
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(engine.size()) * epoch_s *
           static_cast<double>(rep.epochs) / wall;
  };
  rep.nockpt_sps = run(false);
  rep.ckpt_sps = run(true);
  rep.ratio = rep.nockpt_sps > 0.0 ? rep.ckpt_sps / rep.nockpt_sps : 0.0;
  return rep;
}

// --- per-stage micro throughput -------------------------------------------
// Samples/s through each hot-path stage, measured standalone so the JSON
// artifact records where the end-to-end fleet number comes from. The
// channel_block / channel_scalar pair is the PR-level contract the CI
// regression gate (ci/bench_compare.py) checks.
struct StageRates {
  double amp_scalar = 0.0;
  double amp_block = 0.0;
  double sigma_delta_block = 0.0;
  double cic_block = 0.0;
  double channel_scalar = 0.0;
  double channel_block = 0.0;
  /// Channel block path with the trace recorder compiled in but explicitly
  /// disabled — the cost of the dormant AQUA_TRACE_* branches, gated in CI
  /// like channel_block_sps (a tracing hook that slows the disabled hot path
  /// >20% is a regression).
  double channel_block_tracing_off = 0.0;
  /// Cross-sensor SIMD lanes (simd::ChannelBatch over kBatchChannels
  /// channels, aggregate channel-samples/s). channel_batch / channel_block is
  /// the PR's gated ratio: per-sample cost with W sensors per instruction vs
  /// the scalar fused frame.
  double channel_batch = 0.0;
  double thermal_step = 0.0;
};

constexpr int kBatchChannels = 8;  // a multiple of every lane width

// Repeats `body(batch)` until ~0.2 s has elapsed; returns samples/second.
template <typename Body>
double rate_per_second(long samples_per_batch, Body&& body) {
  using clock = std::chrono::steady_clock;
  long total = 0;
  const auto t0 = clock::now();
  auto t1 = t0;
  do {
    body();
    total += samples_per_batch;
    t1 = clock::now();
  } while (std::chrono::duration<double>(t1 - t0).count() < 0.2);
  return total / std::chrono::duration<double>(t1 - t0).count();
}

StageRates measure_stages() {
  constexpr int kFrame = 128;
  StageRates s;

  {
    analog::InstrumentAmp amp{analog::InstrumentAmpSpec{}, util::hertz(256e3),
                              util::Rng{7}};
    const util::Seconds dt{1.0 / 256e3};
    double sink = 0.0;
    s.amp_scalar = rate_per_second(kFrame, [&] {
      for (int i = 0; i < kFrame; ++i)
        sink += amp.step(util::volts(1e-3), dt);
    });
    std::vector<double> in(kFrame, 1e-3), out(kFrame);
    s.amp_block = rate_per_second(
        kFrame, [&] { amp.process_block(in, out, dt); });
    if (sink == 42.0) std::printf(" ");  // keep the scalar loop live
  }
  {
    analog::SigmaDeltaModulator sd{analog::SigmaDeltaSpec{}, util::Rng{8}};
    std::vector<double> in(kFrame, 0.2), bits(kFrame);
    s.sigma_delta_block =
        rate_per_second(kFrame, [&] { (void)sd.process_block(in, bits); });
  }
  {
    dsp::CicDecimator cic{3, kFrame};
    std::vector<double> in(kFrame, 1.0), out(4);
    for (int i = 0; i < kFrame; ++i) in[static_cast<std::size_t>(i)] =
        (i % 3 == 0) ? 1.0 : -1.0;
    s.cic_block =
        rate_per_second(kFrame, [&] { (void)cic.push_block(in, out); });
  }
  {
    // The gated pair: alternate short scalar/block windows and keep the best
    // of each, so a slow CPU-clock wander on a busy runner hits both paths
    // alike instead of skewing whichever ran second.
    isif::InputChannel ch{isif::ChannelConfig{}, util::Rng{2}};
    isif::InputChannel chf{isif::ChannelConfig{}, util::Rng{2}};
    isif::InputChannel cht{isif::ChannelConfig{}, util::Rng{2}};
    std::vector<double> frame(kFrame, 1e-3);
    // The batch side: kBatchChannels identical channels advanced as lane
    // groups; aggregate channel-samples/s is directly comparable to
    // channel_block (same per-sample work, W sensors per instruction).
    std::vector<std::unique_ptr<isif::InputChannel>> batch_channels;
    for (int c = 0; c < kBatchChannels; ++c)
      batch_channels.push_back(std::make_unique<isif::InputChannel>(
          isif::ChannelConfig{}, util::Rng{2}));
    std::vector<simd::ChannelFrameInput> batch_in;
    for (auto& bc : batch_channels)
      batch_in.push_back(simd::ChannelFrameInput{bc.get(), frame});
    std::vector<isif::ChannelSample> batch_out(
        static_cast<std::size_t>(kBatchChannels));
    double sink = 0.0;
    for (int pass = 0; pass < 3; ++pass) {
      s.channel_scalar = std::max(
          s.channel_scalar, rate_per_second(kFrame, [&] {
            for (int i = 0; i < kFrame; ++i)
              if (auto r = ch.tick(util::volts(1e-3))) sink += r->value;
          }));
      s.channel_block = std::max(
          s.channel_block, rate_per_second(kFrame, [&] {
            sink += chf.process_frame(frame).value;
          }));
      s.channel_batch = std::max(
          s.channel_batch, rate_per_second(kBatchChannels * kFrame, [&] {
            simd::ChannelBatch::process_frames(batch_in, batch_out);
            sink += batch_out.front().value;
          }));
      // Same block path under an explicit tracing kill-switch: the window
      // rides the same alternation so clock wander hits all three alike.
      obs::TraceRecorder::set_enabled(false);
      s.channel_block_tracing_off = std::max(
          s.channel_block_tracing_off, rate_per_second(kFrame, [&] {
            sink += cht.process_frame(frame).value;
          }));
    }
    if (sink == 42.0) std::printf(" ");
  }
  {
    maf::MafDie die{maf::MafSpec{}};
    maf::Environment env;
    env.speed = util::metres_per_second(0.8);
    die.set_heater_powers(util::milliwatts(5.0), util::milliwatts(5.0),
                          util::milliwatts(1.0));
    double sink = 0.0;
    s.thermal_step = rate_per_second(64, [&] {
      for (int i = 0; i < 64; ++i) die.step(util::Seconds{4e-6}, env);
      sink += die.heater_a_resistance().value();
    });
    if (sink == 42.0) std::printf(" ");
  }
  return s;
}

// threads == 0: serial on the caller's thread (no pool constructed).
RunResult run_mode(unsigned threads, double sim_seconds) {
  District d = make_district();
  fleet::FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 42;
  cfg.epoch = Seconds{0.25};
  cfg.demand_factor = fleet::diurnal_demand_pattern(Seconds{8.0});
  fleet::FleetEngine engine(d.net, d.placements, cfg);
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});

  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  engine.commission(Seconds{0.25}, pool.get());

  const auto t0 = std::chrono::steady_clock::now();
  engine.run(Seconds{sim_seconds}, pool.get());
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.sensors = engine.size();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.throughput =
      static_cast<double>(engine.size()) * sim_seconds / r.wall_s;
  for (std::size_t i = 0; i < engine.size(); ++i)
    for (const fleet::TraceSample& s : engine.node(i).trace()) {
      r.checksum ^= std::bit_cast<std::uint64_t>(s.bridge_voltage);
      r.checksum ^= std::bit_cast<std::uint64_t>(s.estimate_mps) * 0x9E37u;
      r.checksum ^= std::bit_cast<std::uint64_t>(s.true_mean_mps) * 0x85EBu;
    }
  return r;
}

/// Machine-readable result file (CI artifact): per-mode timings/checksums plus
/// the merged metrics snapshot — epoch/step latency histograms, channel
/// overload and PI saturation counters accumulated over every mode.
void write_json_report(const std::vector<std::pair<std::string, RunResult>>& modes,
                       const StageRates& stages, const ScalingReport& scaling,
                       const CheckpointOverhead& ckpt, unsigned hw,
                       bool deterministic) {
  const char* env_path = std::getenv("AQUA_BENCH_JSON");
  const std::string path = env_path != nullptr ? env_path : "BENCH_fleet.json";

  std::string out;
  out += "{\n  \"bench\": \"bench_fleet\",\n";
  out += std::string("  \"deterministic\": ") +
         (deterministic ? "true" : "false") + ",\n";
  out += "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const auto& [name, r] = modes[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"mode\": \"%s\", \"wall_s\": %.6f, "
                  "\"throughput\": %.3f, \"sensors\": %zu, "
                  "\"checksum\": \"%016llx\"}%s\n",
                  name.c_str(), r.wall_s, r.throughput, r.sensors,
                  static_cast<unsigned long long>(r.checksum),
                  i + 1 < modes.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n";
  {
    // Sharded epoch-loop scaling: the machine-independent efficiency ratio
    // ci/bench_compare.py gates, plus the raw sweep for the artifact.
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "  \"scaling\": {\n"
        "    \"sensors\": %zu,\n"
        "    \"epochs\": %lld,\n"
        "    \"hardware_threads\": %u,\n"
        "    \"deterministic\": %s,\n"
        "    \"fleet_scaling_efficiency\": %.3f,\n"
        "    \"pool8_over_serial\": %.3f,\n"
        "    \"modes\": [\n",
        scaling.sensors, scaling.epochs, hw,
        scaling.deterministic ? "true" : "false", scaling.efficiency,
        scaling.pool8_over_serial);
    out += buf;
    for (std::size_t i = 0; i < scaling.modes.size(); ++i) {
      const auto& [name, r] = scaling.modes[i];
      std::snprintf(buf, sizeof buf,
                    "      {\"mode\": \"%s\", \"wall_s\": %.6f, "
                    "\"throughput\": %.3f, \"checksum\": \"%016llx\"}%s\n",
                    name.c_str(), r.wall_s, r.throughput,
                    static_cast<unsigned long long>(r.checksum),
                    i + 1 < scaling.modes.size() ? "," : "");
      out += buf;
    }
    out += "    ],\n";
    if (scaling.xl_ran) {
      std::snprintf(buf, sizeof buf,
                    "    \"completion_run\": {\"sensors\": %zu, "
                    "\"epochs\": %lld, \"wall_s\": %.3f, "
                    "\"checksum\": \"%016llx\"}\n",
                    scaling.xl_sensors, scaling.xl_epochs, scaling.xl_wall_s,
                    static_cast<unsigned long long>(scaling.xl_checksum));
      out += buf;
    } else {
      out += "    \"completion_run\": null\n";
    }
    out += "  },\n";
  }
  {
    // Per-stage micro throughput (samples/s): where the end-to-end number
    // comes from, and the input to the CI regression gate.
    char buf[2048];
    std::snprintf(
        buf, sizeof buf,
        "  \"stages\": {\n"
        "    \"amp_scalar_sps\": %.0f,\n"
        "    \"amp_block_sps\": %.0f,\n"
        "    \"sigma_delta_block_sps\": %.0f,\n"
        "    \"cic_block_sps\": %.0f,\n"
        "    \"channel_scalar_sps\": %.0f,\n"
        "    \"channel_block_sps\": %.0f,\n"
        "    \"channel_block_over_scalar\": %.3f,\n"
        "    \"channel_block_tracing_off_sps\": %.0f,\n"
        "    \"channel_tracing_off_over_block\": %.3f,\n"
        "    \"lane_width\": %d,\n"
        "    \"channel_batch_sps\": %.0f,\n"
        "    \"channel_batch_over_block\": %.3f,\n"
        "    \"fleet_nockpt_sps\": %.0f,\n"
        "    \"fleet_ckpt_sps\": %.0f,\n"
        "    \"fleet_ckpt_over_nockpt\": %.3f,\n"
        "    \"checkpoint_interval_epochs\": %lld,\n"
        "    \"checkpoint_image_bytes\": %zu,\n"
        "    \"thermal_step_sps\": %.0f\n"
        "  },\n",
        stages.amp_scalar, stages.amp_block, stages.sigma_delta_block,
        stages.cic_block, stages.channel_scalar, stages.channel_block,
        stages.channel_scalar > 0.0
            ? stages.channel_block / stages.channel_scalar
            : 0.0,
        stages.channel_block_tracing_off,
        stages.channel_block > 0.0
            ? stages.channel_block_tracing_off / stages.channel_block
            : 0.0,
        simd::active_lane_width(), stages.channel_batch,
        stages.channel_block > 0.0
            ? stages.channel_batch / stages.channel_block
            : 0.0,
        ckpt.nockpt_sps, ckpt.ckpt_sps, ckpt.ratio, ckpt.interval,
        ckpt.image_bytes, stages.thermal_step);
    out += buf;
  }
  // Re-indent the snapshot under the "metrics" key (it renders from column 0).
  std::string metrics = obs::to_json(obs::Registry::instance().snapshot());
  std::string indented;
  indented.reserve(metrics.size());
  for (char c : metrics) {
    indented += c;
    if (c == '\n') indented += "  ";
  }
  out += "  \"metrics\": " + indented + "\n}\n";

  obs::write_file(path, out);
  std::printf("metrics: wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  aqua::bench::banner(
      "bench_fleet", "fleet co-simulation scaling (paper §6)",
      "many cheap sensors diffused over the network, co-simulated; serial "
      "and parallel runs must agree bit-for-bit");

  const double sim_seconds = 4.0;
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u, sensors: 32, sim horizon: %.1f s "
              "(epoch 0.25 s, diurnal day 8 s, coarse ISIF)\n\n",
              hw, sim_seconds);
  std::printf("%-12s %10s %16s %18s\n", "mode", "wall [s]",
              "sensors*sims/s", "trace checksum");

  std::vector<std::pair<std::string, RunResult>> results;

  // Trace the timed modes: the capture itself is part of what this bench
  // proves (identical checksums with tracing enabled = the no-perturbation
  // contract). Pool workers name their tracks as each pool spins up.
  obs::TraceRecorder::set_enabled(true);
  obs::TraceRecorder::set_thread_name("main");

  const RunResult serial = run_mode(0, sim_seconds);
  results.emplace_back("serial", serial);
  std::printf("%-12s %10.3f %16.1f %18llx\n", "serial", serial.wall_s,
              serial.throughput,
              static_cast<unsigned long long>(serial.checksum));

  bool deterministic = true;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const RunResult r = run_mode(threads, sim_seconds);
    const bool same = r.checksum == serial.checksum;
    deterministic = deterministic && same;
    char mode[32];
    std::snprintf(mode, sizeof mode, "pool(%u)", threads);
    results.emplace_back(mode, r);
    std::printf("%-12s %10.3f %16.1f %18llx%s\n", mode, r.wall_s,
                r.throughput, static_cast<unsigned long long>(r.checksum),
                same ? "" : "  << MISMATCH");
  }

  std::printf("\ndeterminism: %s — every mode reproduced the serial traces "
              "bit-for-bit\n",
              deterministic ? "PASS" : "FAIL");

  // Export the capture next to the metrics artifact, then disable tracing so
  // the stage micro-benchmarks below measure the dormant-branch hot path.
  {
    const char* env_trace = std::getenv("AQUA_TRACE_JSON");
    const std::string trace_path =
        env_trace != nullptr ? env_trace : "BENCH_fleet_trace.json";
    obs::write_chrome_trace(trace_path,
                            obs::TraceRecorder::instance().snapshot());
    std::printf("trace: wrote %s (open at https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  obs::TraceRecorder::set_enabled(false);

  // Scaling sweep runs with tracing off: a 10k-sensor capture would swamp the
  // ring buffers, and the dormant-branch cost is what production pays.
  const ScalingReport scaling = run_scaling_sweep(hw);

  std::printf("\nper-stage micro throughput (samples/s):\n");
  const StageRates stages = measure_stages();
  std::printf("  %-22s %12.3e\n", "amp scalar", stages.amp_scalar);
  std::printf("  %-22s %12.3e\n", "amp block", stages.amp_block);
  std::printf("  %-22s %12.3e\n", "sigma-delta block", stages.sigma_delta_block);
  std::printf("  %-22s %12.3e\n", "cic block", stages.cic_block);
  std::printf("  %-22s %12.3e\n", "channel scalar ticks", stages.channel_scalar);
  std::printf("  %-22s %12.3e  (%.2fx scalar)\n", "channel block frames",
              stages.channel_block,
              stages.channel_scalar > 0.0
                  ? stages.channel_block / stages.channel_scalar
                  : 0.0);
  std::printf("  %-22s %12.3e  (%.2fx traced-build block)\n",
              "channel (tracing off)", stages.channel_block_tracing_off,
              stages.channel_block > 0.0
                  ? stages.channel_block_tracing_off / stages.channel_block
                  : 0.0);
  std::printf("  %-22s %12.3e  (%.2fx block, lane width %d)\n",
              "channel batch lanes", stages.channel_batch,
              stages.channel_block > 0.0
                  ? stages.channel_batch / stages.channel_block
                  : 0.0,
              simd::active_lane_width());
  std::printf("  %-22s %12.3e\n", "thermal die step", stages.thermal_step);

  const CheckpointOverhead ckpt = measure_checkpoint_overhead();
  std::printf("\ncheckpoint overhead: %.1f sensors*sims/s plain vs %.1f with "
              "a durable checkpoint every %lld epochs (%.2fx, CI floor 0.90; "
              "image %zu bytes)\n",
              ckpt.nockpt_sps, ckpt.ckpt_sps, ckpt.interval, ckpt.ratio,
              ckpt.image_bytes);

  write_json_report(results, stages, scaling, ckpt, hw, deterministic);
  if (hw <= 1)
    std::printf("note: single hardware thread — parallel modes time-slice "
                "one core, so no wall-clock speedup is expected here.\n");
  return (deterministic && scaling.deterministic) ? 0 : 1;
}
