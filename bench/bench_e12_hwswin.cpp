// E12 — §3 platform claims: "a library of software peripherals ... with an
// exact matching with hardware devices" and "the LEON CPU ... guarantees
// flexibility and required computational power for real-time software IPs".
// We (a) check bit-exactness between hardware IPs and their software twins,
// (b) quantify the float-prototype mismatch, and (c) account the LEON cycle
// budget of the full MAF conditioning firmware.
#include <cmath>

#include "common.hpp"
#include "isif/firmware.hpp"
#include "isif/ip.hpp"

using namespace aqua;

int main() {
  bench::banner("E12", "section 3 HW-IP / SW-IP duality + LEON budget",
                "software IPs match hardware exactly; the control law is a "
                "small fraction of the LEON's real-time budget");

  // --- (a)/(b): IIR and PI implementations fed the same stimulus ------------
  const std::vector<dsp::BiquadCoefficients> iir_sections{
      {0.02008, 0.04017, 0.02008, -1.56102, 0.64135}};
  isif::IirIp iir_hw{iir_sections, isif::IpImpl::kHardwareFixed};
  isif::IirIp iir_swfix{iir_sections, isif::IpImpl::kSoftwareFixed};
  isif::IirIp iir_swfloat{iir_sections, isif::IpImpl::kSoftwareFloat};

  const dsp::PidGains gains{0.6, 30.0, 0.0};
  const dsp::PidLimits limits{0.05, 1.0};
  isif::PiIp pi_hw{gains, limits, util::hertz(2000.0),
                   isif::IpImpl::kHardwareFixed};
  isif::PiIp pi_swfix{gains, limits, util::hertz(2000.0),
                      isif::IpImpl::kSoftwareFixed};
  isif::PiIp pi_swfloat{gains, limits, util::hertz(2000.0),
                        isif::IpImpl::kSoftwareFloat};

  long long iir_exact = 0, pi_exact = 0;
  double iir_float_max = 0.0, pi_float_max = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = 0.3 * std::sin(0.013 * i) + 0.1 * std::sin(0.171 * i);
    const double a = iir_hw.process(x);
    const double b = iir_swfix.process(x);
    const double c = iir_swfloat.process(x);
    if (a == b) ++iir_exact;
    iir_float_max = std::max(iir_float_max, std::abs(a - c));
    const double e = 0.05 * std::sin(0.007 * i);
    const double pa = pi_hw.update(e);
    const double pb = pi_swfix.update(e);
    const double pc = pi_swfloat.update(e);
    if (pa == pb) ++pi_exact;
    pi_float_max = std::max(pi_float_max, std::abs(pa - pc));
  }

  util::Table match{"E12a: implementation match over 20k samples"};
  match.columns({"IP", "HW vs SW-fixed bit-exact", "HW vs SW-float max diff"});
  match.precision(8);
  match.add_row({std::string("IIR biquad"),
                 std::string(iir_exact == kSamples ? "100%" : "NO"),
                 iir_float_max});
  match.add_row({std::string("PI controller"),
                 std::string(pi_exact == kSamples ? "100%" : "NO"),
                 pi_float_max});
  bench::print(match);

  // --- (c): the full conditioning firmware on the LEON budget ---------------
  const isif::CycleCosts costs{};
  util::Table budget{"E12b: LEON 40 MHz cycle budget at the 2 kHz control rate"};
  budget.columns({"configuration", "avg load [%]", "peak load [%]", "watchdog"});
  budget.precision(3);

  const auto run_budget = [&](bool software_ips, int extra_fir_taps) {
    isif::Firmware fw{isif::LeonSpec{}, util::hertz(2000.0)};
    const int pi_cycles =
        software_ips ? costs.sample_overhead + costs.pi_controller : 0;
    const int iir_cycles =
        software_ips ? costs.sample_overhead + costs.per_biquad_section : 0;
    fw.add_task("pi", 1, pi_cycles, [] {});
    fw.add_task("dir_lp", 1, iir_cycles, [] {});
    fw.add_task("out_iir", 200,
                software_ips ? costs.sample_overhead +
                                   2 * costs.per_biquad_section
                             : 0,
                [] {});
    if (extra_fir_taps > 0)
      fw.add_task("fir", 1,
                  costs.sample_overhead + costs.per_fir_tap * extra_fir_taps,
                  [] {});
    for (int i = 0; i < 4000; ++i) fw.tick();
    return fw;
  };

  {
    const auto fw = run_budget(true, 0);
    budget.add_row({std::string("paper app, software IPs"),
                    fw.average_load() * 100.0, fw.peak_load() * 100.0,
                    std::string(fw.watchdog_tripped() ? "TRIPPED" : "ok")});
  }
  {
    const auto fw = run_budget(false, 0);
    budget.add_row({std::string("paper app, hardware IPs (final ASIC)"),
                    fw.average_load() * 100.0, fw.peak_load() * 100.0,
                    std::string(fw.watchdog_tripped() ? "TRIPPED" : "ok")});
  }
  {
    const auto fw = run_budget(true, 512);
    budget.add_row({std::string("software IPs + 512-tap FIR (stress)"),
                    fw.average_load() * 100.0, fw.peak_load() * 100.0,
                    std::string(fw.watchdog_tripped() ? "TRIPPED" : "ok")});
  }
  bench::print(budget);

  std::printf(
      "\nsummary: fixed-point software IPs match the silicon bit-for-bit "
      "(IIR %s, PI %s);\nfloat prototypes agree to %.1e. The whole MAF "
      "conditioning firmware uses ~1%% of the LEON.\n"
      "paper shape: 'exact matching with hardware devices' and comfortable "
      "real-time headroom — reproduced.\n",
      iir_exact == kSamples ? "exact" : "MISMATCH",
      pi_exact == kSamples ? "exact" : "MISMATCH",
      std::max(iir_float_max, pi_float_max));
  return 0;
}
