// A1 — ablations of the design choices DESIGN.md §5 calls out (beyond those
// already isolated by E7/E8/E12):
//   (a) output-filter bandwidth: the paper picks 0.1 Hz "to improve the
//       sensitivity" — we sweep the cutoff and show the resolution/response
//       trade that makes 0.1 Hz the right choice for a water meter;
//   (b) overtemperature setpoint: sensitivity (dU/dv) grows with ΔT, but so
//       does the fouling margin consumed — the quantified version of the
//       paper's "reduced overtemperature" decision;
//   (c) PI integral gain: loop noise vs tracking speed.
#include <cmath>

#include "common.hpp"
#include "core/cta.hpp"
#include "core/drive_modes.hpp"
#include "phys/saturation.hpp"
#include "util/stats.hpp"

using namespace aqua;

namespace {

maf::Environment water(double v) {
  maf::Environment env;
  env.speed = util::metres_per_second(v);
  env.fluid_temperature = util::celsius(15.0);
  env.pressure = util::bar(2.0);
  return env;
}

/// Settled-output noise (sigma of filtered voltage, mV) and 63 % step
/// response (s) for a given output-filter cutoff.
struct FilterAblation {
  double noise_mv;
  double response_s;
};

FilterAblation run_filter_case(double cutoff_hz, std::uint64_t seed) {
  cta::CtaConfig cfg;
  cfg.output_cutoff = util::hertz(cutoff_hz);
  util::Rng rng{seed};
  cta::CtaAnemometer anemo{maf::MafSpec{}, cta::fast_isif_config(), cfg, rng};

  // Noise at steady 1 m/s with synthetic turbulence-free input: measure the
  // loop's own noise through the filter.
  anemo.run(util::Seconds{5.0 + 3.0 / cutoff_hz}, water(1.0));
  util::RunningStats noise;
  const long long ticks = static_cast<long long>(10.0 / anemo.tick_period().value());
  for (long long i = 0; i < ticks; ++i) {
    anemo.tick(water(1.0));
    if (i % 3200 == 0) noise.add(anemo.filtered_voltage());
  }

  // Step response of the filtered output.
  const double u0 = anemo.filtered_voltage();
  util::Rng rng2{seed};
  cta::CtaAnemometer probe{maf::MafSpec{}, cta::fast_isif_config(), cfg, rng2};
  probe.run(util::Seconds{5.0 + 3.0 / cutoff_hz}, water(1.0));
  probe.run(util::Seconds{5.0 + 3.0 / cutoff_hz}, water(1.8));
  const double u1 = probe.filtered_voltage();
  const double target = u0 + 0.632 * (u1 - u0);
  double elapsed = 0.0;
  const double dt = anemo.tick_period().value();
  while (anemo.filtered_voltage() < target && elapsed < 60.0) {
    anemo.tick(water(1.8));
    elapsed += dt;
  }
  return FilterAblation{noise.stddev() * 1e3, elapsed};
}

}  // namespace

int main() {
  bench::banner("A1", "design-choice ablations (DESIGN.md section 5)",
                "0.1 Hz output filter, reduced overtemperature and moderate "
                "PI gains are deliberate trade-offs");

  // --- (a) output filter cutoff ---------------------------------------------
  util::Table filt{"A1a: output-filter cutoff vs noise and response"};
  filt.columns({"cutoff [Hz]", "output noise [mV]", "step response 63% [s]"});
  filt.precision(3);
  std::uint64_t seed = 8800;
  for (double fc : {1.0, 0.3, 0.1, 0.03}) {
    const auto r = run_filter_case(fc, seed++);
    filt.add_row({fc, r.noise_mv, r.response_s});
  }
  bench::print(filt);

  // --- (b) overtemperature setpoint ------------------------------------------
  util::Table ot{"A1b: overtemperature vs sensitivity and bubble margin (2 bar)"};
  ot.columns({"dT [K]", "dU/dv @1m/s [mV/(m/s)]", "bubble margin [K]",
              "heater power @1m/s [mW]"});
  ot.precision(2);
  const double onset = phys::bubble_onset_overtemperature(
                           util::celsius(15.0), util::bar(2.0), 1.0)
                           .value();
  for (double dt : {3.0, 5.0, 10.0, 20.0, 30.0}) {
    maf::MafDie die{maf::MafSpec{}};
    cta::CtaConfig cfg;
    cfg.overtemperature = util::kelvin(dt);
    const auto lo = cta::solve_constant_temperature(die, water(0.9), cfg);
    const auto hi = cta::solve_constant_temperature(die, water(1.1), cfg);
    const auto mid = cta::solve_constant_temperature(die, water(1.0), cfg);
    ot.add_row({dt, (hi.supply_v - lo.supply_v) / 0.2 * 1e3, onset - dt,
                mid.heater_power_w * 1e3});
  }
  bench::print(ot);

  // --- (c) PI integral gain ---------------------------------------------------
  util::Table pi{"A1c: PI integral gain vs loop noise and tracking"};
  pi.columns({"ki [1/s]", "bridge-voltage noise [mV]", "track 63% [ms]"});
  pi.precision(2);
  for (double ki : {10.0, 30.0, 100.0, 300.0}) {
    cta::CtaConfig cfg;
    cfg.pi.ki = ki;
    util::Rng rng{seed++};
    cta::CtaAnemometer anemo{maf::MafSpec{}, cta::fast_isif_config(), cfg, rng};
    anemo.run(util::Seconds{4.0}, water(1.0));
    util::RunningStats noise;
    const long long ticks =
        static_cast<long long>(4.0 / anemo.tick_period().value());
    for (long long i = 0; i < ticks; ++i) {
      anemo.tick(water(1.0));
      if (i % 320 == 0) noise.add(anemo.bridge_voltage());
    }
    // Tracking: raw measurand response to a step.
    const double u0 = anemo.bridge_voltage();
    util::Rng rng2{seed};
    cta::CtaAnemometer probe{maf::MafSpec{}, cta::fast_isif_config(), cfg, rng2};
    probe.run(util::Seconds{4.0}, water(1.0));
    probe.run(util::Seconds{4.0}, water(1.8));
    const double u1 = probe.bridge_voltage();
    double elapsed = 0.0;
    const double dt = anemo.tick_period().value();
    while (anemo.bridge_voltage() < u0 + 0.632 * (u1 - u0) && elapsed < 5.0) {
      anemo.tick(water(1.8));
      elapsed += dt;
    }
    pi.add_row({ki, noise.stddev() * 1e3, elapsed * 1e3});
  }
  bench::print(pi);

  std::printf(
      "\nsummary: lowering the output cutoff buys noise at the cost of "
      "response (0.1 Hz ≈ the paper's\nsweet spot for a slow water line); "
      "overtemperature above ~15 K eats the whole bubble margin at\n2 bar "
      "while 5 K keeps ~%.0f K of headroom; a very stiff PI tracks faster but "
      "passes more noise.\n",
      onset - 5.0);
  return 0;
}
