#!/usr/bin/env python3
"""Gate the channel hot-path throughput against the committed baseline.

Reads the per-stage section bench_fleet writes into BENCH_fleet.json and
compares it with ci/bench_baseline.json (committed alongside the code, the
same machinery as ci/tier1_baseline_seconds.txt). The job fails when the
block-path channel throughput regresses more than the allowed fraction, or
when the block path loses its edge over the scalar reference path entirely.

CI runners differ from the machine that recorded the baseline, so two checks
with different characters are applied:

* channel_block_sps vs baseline           — absolute samples/s, 20 % slack.
  Catches "someone deoptimised the fused loop" on comparable hardware.
* channel_block_over_scalar ratio >= 1.0  — machine-independent. The block
  path running SLOWER than per-tick scalar calls in the same binary is a
  structural regression no amount of runner variance explains.

Other stage rates are reported but only warn: they feed the artifact for
trend-watching, not the gate.

Usage: ci/bench_compare.py BENCH_fleet.json ci/bench_baseline.json
"""

import json
import sys

REGRESSION_SLACK = 0.20  # fail below 80 % of the baseline throughput
GATED_KEY = "channel_block_sps"
RATIO_KEY = "channel_block_over_scalar"
WARN_KEYS = [
    "amp_scalar_sps",
    "amp_block_sps",
    "sigma_delta_block_sps",
    "cic_block_sps",
    "channel_scalar_sps",
    "thermal_step_sps",
]


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        measured = json.load(f).get("stages", {})
    with open(argv[2]) as f:
        baseline = json.load(f).get("stages", {})

    if GATED_KEY not in measured:
        print(f"::error::{argv[1]} has no stages.{GATED_KEY} — "
              "bench_fleet did not write its per-stage section")
        return 1

    failed = False

    got = measured[GATED_KEY]
    want = baseline.get(GATED_KEY, 0.0)
    floor = want * (1.0 - REGRESSION_SLACK)
    print(f"{GATED_KEY}: measured {got:.3e}, baseline {want:.3e}, "
          f"floor {floor:.3e} ({100 * (1 - REGRESSION_SLACK):.0f} %)")
    if got < floor:
        print(f"::error::channel block throughput regressed "
              f">{100 * REGRESSION_SLACK:.0f} % vs the committed baseline "
              f"({got:.3e} < {floor:.3e} samples/s) — update "
              f"{argv[2]} only with an explanation")
        failed = True

    ratio = measured.get(RATIO_KEY, 0.0)
    print(f"{RATIO_KEY}: {ratio:.2f} (must stay >= 1.0)")
    if ratio < 1.0:
        print("::error::the fused block path is slower than the scalar "
              "reference path in the same binary — structural regression")
        failed = True

    for key in WARN_KEYS:
        got = measured.get(key)
        want = baseline.get(key)
        if got is None or want is None or want <= 0.0:
            continue
        if got < want * (1.0 - REGRESSION_SLACK):
            print(f"::warning::{key} below baseline: "
                  f"{got:.3e} vs {want:.3e} (informational)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
