#!/usr/bin/env python3
"""Gate the channel hot-path throughput against the committed baseline.

Reads the per-stage section bench_fleet writes into BENCH_fleet.json and
compares it with ci/bench_baseline.json (committed alongside the code, the
same machinery as ci/tier1_baseline_seconds.txt). The job fails when the
block-path channel throughput regresses more than the allowed fraction, or
when the block path loses its edge over the scalar reference path entirely.

CI runners differ from the machine that recorded the baseline, so the gates
come in two characters:

* channel_block_sps vs baseline               — absolute samples/s, 20 % slack.
  Catches "someone deoptimised the fused loop" on comparable hardware.
* channel_block_tracing_off_sps vs baseline   — same 20 % slack, measured with
  the trace recorder compiled in but disabled. Catches tracing hooks whose
  dormant branches leak into the hot path.
* channel_block_over_scalar ratio >= 1.0      — machine-independent. The block
  path running SLOWER than per-tick scalar calls in the same binary is a
  structural regression no amount of runner variance explains.
* channel_tracing_off_over_block ratio >= 0.8 — machine-independent companion
  for the tracing overhead: both sides run in the same binary seconds apart,
  so a >20 % gap is the instrumentation, not the runner.
* channel_batch_over_block ratio >= 2.0       — machine-independent. The
  cross-sensor SIMD lanes aggregate channel-samples/s against the per-channel
  block path in the same binary; on any vector host (lane width >= 2) losing
  the 2x edge means the lanes stopped paying for themselves. Skipped with a
  notice when the binary compiled to lane width 1 (AQUA_SIMD=OFF or a
  no-vector host) — there the batch path IS the scalar arithmetic.
* channel_batch_sps vs baseline               — absolute samples/s, 20 % slack,
  compared only when the measured lane width equals the baseline's recorded
  lane width (an SSE2-only runner against an AVX2 baseline tells us nothing).
* fleet_ckpt_over_nockpt ratio >= 0.9         — machine-independent. The same
  32-sensor epoch loop with a durable checkpoint (serialize + atomic
  temp/fsync/rename) every 100 epochs, against the plain loop in the same
  binary; losing more than 10 % of throughput means checkpointing got too
  expensive for its production cadence.
* scaling.fleet_scaling_efficiency >= 0.8     — machine-independent. The fleet
  sweep normalises each pool mode's speedup by min(threads, hardware threads),
  so ideal is 1.0 whether the runner has 1 core or 64; dropping below 0.8
  means the sharded epoch loop stopped scaling (serialisation, queue overhead,
  imbalance), not that the runner is slow. scaling.deterministic must also be
  true — a checksum mismatch at 1k sensors is a broken determinism contract.

Other stage rates are reported but only warn: they feed the artifact for
trend-watching, not the gate.

Usage: ci/bench_compare.py BENCH_fleet.json ci/bench_baseline.json
"""

import json
import sys

REGRESSION_SLACK = 0.20  # fail below 80 % of the baseline throughput
SCALING_EFFICIENCY_FLOOR = 0.80  # hardware-normalised, so machine-independent
GATED_KEYS = ["channel_block_sps", "channel_block_tracing_off_sps"]
RATIO_KEY = "channel_block_over_scalar"
TRACING_RATIO_KEY = "channel_tracing_off_over_block"
TRACING_RATIO_FLOOR = 0.80
BATCH_RATIO_KEY = "channel_batch_over_block"
BATCH_RATIO_FLOOR = 2.0
BATCH_SPS_KEY = "channel_batch_sps"
LANE_WIDTH_KEY = "lane_width"
CKPT_RATIO_KEY = "fleet_ckpt_over_nockpt"
CKPT_RATIO_FLOOR = 0.90
WARN_KEYS = [
    "amp_scalar_sps",
    "amp_block_sps",
    "sigma_delta_block_sps",
    "cic_block_sps",
    "channel_scalar_sps",
    "thermal_step_sps",
]


def load_report(path, role):
    """Loads a report JSON; emits ::error and returns None on a missing,
    unreadable, or unparsable file (instead of a traceback)."""
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as exc:
        print(f"::error::cannot read {role} file {path}: {exc} — "
              "did bench_fleet run and write its JSON report?")
        return None
    except json.JSONDecodeError as exc:
        print(f"::error::{role} file {path} is not valid JSON ({exc}) — "
              "truncated bench run or corrupted artifact")
        return None
    return report


def load_stages(path, role):
    """The "stages" object of a report, or None (with ::error) if absent."""
    report = load_report(path, role)
    if report is None:
        return None
    stages = report.get("stages")
    if not isinstance(stages, dict):
        print(f"::error::{role} file {path} has no \"stages\" object — "
              "bench_fleet did not write its per-stage section")
        return None
    return stages


def gated_ratio(measured, path, key):
    """A gated ratio metric, or None with a ::error that NAMES the missing
    key. Folding "missing" into 0.0 would fail the gate with a message
    blaming a perf regression that never happened — a missing key means the
    bench didn't write it (stale binary, renamed metric), which is its own
    failure and needs its own message."""
    value = measured.get(key)
    if value is None:
        print(f"::error::{path} has no stages.{key} — bench_fleet did not "
              "write this gated metric (stale bench binary or renamed key?)")
        return None
    return value


def check_scaling(path):
    """Gates the fleet scaling sweep: determinism plus the hardware-normalised
    efficiency floor. Both are properties of the measured run alone — no
    baseline needed, so runner hardware never enters the comparison."""
    report = load_report(path, "measured")
    if report is None:
        return True
    scaling = report.get("scaling")
    if not isinstance(scaling, dict):
        print(f"::error::{path} has no \"scaling\" object — bench_fleet did "
              "not run its fleet scaling sweep")
        return True

    failed = False
    sensors = scaling.get("sensors", 0)
    hw = scaling.get("hardware_threads", 0)
    if not scaling.get("deterministic", False):
        print(f"::error::fleet scaling sweep at {sensors} sensors produced "
              "divergent trace checksums across thread counts — the "
              "determinism contract is broken")
        failed = True
    efficiency = scaling.get("fleet_scaling_efficiency", 0.0)
    print(f"fleet_scaling_efficiency: {efficiency:.2f} at {sensors} sensors, "
          f"{hw} hardware threads "
          f"(must stay >= {SCALING_EFFICIENCY_FLOOR:.1f}; ideal 1.0)")
    if efficiency < SCALING_EFFICIENCY_FLOOR:
        print("::error::the sharded fleet epoch loop fell below "
              f"{SCALING_EFFICIENCY_FLOOR:.0%} of ideal thread scaling — "
              "the ratio is normalised by available hardware threads, so "
              "this is a scheduling/serialisation regression, not a slow "
              "runner")
        failed = True
    return failed


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    measured = load_stages(argv[1], "measured")
    baseline = load_stages(argv[2], "baseline")
    if measured is None or baseline is None:
        return 1

    failed = check_scaling(argv[1])

    for key in GATED_KEYS:
        if key not in measured:
            print(f"::error::{argv[1]} has no stages.{key} — "
                  "bench_fleet did not write its per-stage section")
            failed = True
            continue
        got = measured[key]
        want = baseline.get(key, 0.0)
        floor = want * (1.0 - REGRESSION_SLACK)
        print(f"{key}: measured {got:.3e}, baseline {want:.3e}, "
              f"floor {floor:.3e} ({100 * (1 - REGRESSION_SLACK):.0f} %)")
        if got < floor:
            print(f"::error::{key} regressed "
                  f">{100 * REGRESSION_SLACK:.0f} % vs the committed baseline "
                  f"({got:.3e} < {floor:.3e} samples/s) — update "
                  f"{argv[2]} only with an explanation")
            failed = True

    ratio = gated_ratio(measured, argv[1], RATIO_KEY)
    if ratio is None:
        failed = True
    else:
        print(f"{RATIO_KEY}: {ratio:.2f} (must stay >= 1.0)")
        if ratio < 1.0:
            print("::error::the fused block path is slower than the scalar "
                  "reference path in the same binary — structural regression")
            failed = True

    tracing_ratio = gated_ratio(measured, argv[1], TRACING_RATIO_KEY)
    if tracing_ratio is None:
        failed = True
    else:
        print(f"{TRACING_RATIO_KEY}: {tracing_ratio:.2f} "
              f"(must stay >= {TRACING_RATIO_FLOOR:.1f})")
        if tracing_ratio < TRACING_RATIO_FLOOR:
            print("::error::disabled tracing costs more than "
                  f"{100 * (1 - TRACING_RATIO_FLOOR):.0f} % of channel block "
                  "throughput — the dormant AQUA_TRACE_* branches leaked into "
                  "the hot path")
            failed = True

    ckpt_ratio = gated_ratio(measured, argv[1], CKPT_RATIO_KEY)
    if ckpt_ratio is None:
        failed = True
    else:
        interval = measured.get("checkpoint_interval_epochs", 0)
        print(f"{CKPT_RATIO_KEY}: {ckpt_ratio:.2f} at a {interval}-epoch "
              f"cadence (must stay >= {CKPT_RATIO_FLOOR:.1f})")
        if ckpt_ratio < CKPT_RATIO_FLOOR:
            print("::error::durable checkpointing every "
                  f"{interval} epochs costs more than "
                  f"{100 * (1 - CKPT_RATIO_FLOOR):.0f} % of fleet throughput "
                  "— both sides run in the same binary, so this is the "
                  "serialize/fsync path getting expensive, not runner "
                  "variance")
            failed = True

    # The cross-sensor SIMD lane gates. Ratio first: machine-independent, but
    # only meaningful when the binary actually compiled vector lanes.
    lane_width = measured.get(LANE_WIDTH_KEY, 0)
    batch_ratio = measured.get(BATCH_RATIO_KEY, 0.0)
    if lane_width >= 2:
        print(f"{BATCH_RATIO_KEY}: {batch_ratio:.2f} at lane width "
              f"{lane_width} (must stay >= {BATCH_RATIO_FLOOR:.1f})")
        if batch_ratio < BATCH_RATIO_FLOOR:
            print("::error::the cross-sensor SIMD lanes deliver less than "
                  f"{BATCH_RATIO_FLOOR:.0f}x the per-channel block path in "
                  "the same binary — the lanes stopped paying for the "
                  "gather/scatter overhead (structural regression, not "
                  "runner variance)")
            failed = True
    else:
        print(f"{BATCH_RATIO_KEY}: skipped — binary compiled to lane width "
              f"{lane_width} (AQUA_SIMD=OFF or no vector ISA), the batch "
              "path is the scalar arithmetic there")

    # Absolute batch throughput: only comparable at equal lane width.
    base_width = baseline.get(LANE_WIDTH_KEY, 0)
    batch_sps = measured.get(BATCH_SPS_KEY)
    base_batch_sps = baseline.get(BATCH_SPS_KEY, 0.0)
    if batch_sps is not None and base_batch_sps > 0.0 \
            and lane_width == base_width:
        floor = base_batch_sps * (1.0 - REGRESSION_SLACK)
        print(f"{BATCH_SPS_KEY}: measured {batch_sps:.3e}, baseline "
              f"{base_batch_sps:.3e}, floor {floor:.3e} at lane width "
              f"{lane_width}")
        if batch_sps < floor:
            print(f"::error::{BATCH_SPS_KEY} regressed "
                  f">{100 * REGRESSION_SLACK:.0f} % vs the committed "
                  f"baseline at the same lane width ({batch_sps:.3e} < "
                  f"{floor:.3e} samples/s)")
            failed = True
    elif batch_sps is not None and lane_width != base_width:
        print(f"{BATCH_SPS_KEY}: absolute gate skipped — measured lane width "
              f"{lane_width} vs baseline {base_width}, not comparable")

    for key in WARN_KEYS:
        got = measured.get(key)
        want = baseline.get(key)
        if got is None or want is None or want <= 0.0:
            continue
        if got < want * (1.0 - REGRESSION_SLACK):
            print(f"::warning::{key} below baseline: "
                  f"{got:.3e} vs {want:.3e} (informational)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
