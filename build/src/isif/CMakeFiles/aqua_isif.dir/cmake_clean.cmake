file(REMOVE_RECURSE
  "CMakeFiles/aqua_isif.dir/channel.cpp.o"
  "CMakeFiles/aqua_isif.dir/channel.cpp.o.d"
  "CMakeFiles/aqua_isif.dir/dac_ctrl.cpp.o"
  "CMakeFiles/aqua_isif.dir/dac_ctrl.cpp.o.d"
  "CMakeFiles/aqua_isif.dir/firmware.cpp.o"
  "CMakeFiles/aqua_isif.dir/firmware.cpp.o.d"
  "CMakeFiles/aqua_isif.dir/ip.cpp.o"
  "CMakeFiles/aqua_isif.dir/ip.cpp.o.d"
  "CMakeFiles/aqua_isif.dir/platform.cpp.o"
  "CMakeFiles/aqua_isif.dir/platform.cpp.o.d"
  "CMakeFiles/aqua_isif.dir/registers.cpp.o"
  "CMakeFiles/aqua_isif.dir/registers.cpp.o.d"
  "CMakeFiles/aqua_isif.dir/selftest.cpp.o"
  "CMakeFiles/aqua_isif.dir/selftest.cpp.o.d"
  "libaqua_isif.a"
  "libaqua_isif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_isif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
