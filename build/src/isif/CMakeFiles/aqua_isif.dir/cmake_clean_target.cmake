file(REMOVE_RECURSE
  "libaqua_isif.a"
)
