# Empty dependencies file for aqua_isif.
# This may be replaced when dependencies are built.
