
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isif/channel.cpp" "src/isif/CMakeFiles/aqua_isif.dir/channel.cpp.o" "gcc" "src/isif/CMakeFiles/aqua_isif.dir/channel.cpp.o.d"
  "/root/repo/src/isif/dac_ctrl.cpp" "src/isif/CMakeFiles/aqua_isif.dir/dac_ctrl.cpp.o" "gcc" "src/isif/CMakeFiles/aqua_isif.dir/dac_ctrl.cpp.o.d"
  "/root/repo/src/isif/firmware.cpp" "src/isif/CMakeFiles/aqua_isif.dir/firmware.cpp.o" "gcc" "src/isif/CMakeFiles/aqua_isif.dir/firmware.cpp.o.d"
  "/root/repo/src/isif/ip.cpp" "src/isif/CMakeFiles/aqua_isif.dir/ip.cpp.o" "gcc" "src/isif/CMakeFiles/aqua_isif.dir/ip.cpp.o.d"
  "/root/repo/src/isif/platform.cpp" "src/isif/CMakeFiles/aqua_isif.dir/platform.cpp.o" "gcc" "src/isif/CMakeFiles/aqua_isif.dir/platform.cpp.o.d"
  "/root/repo/src/isif/registers.cpp" "src/isif/CMakeFiles/aqua_isif.dir/registers.cpp.o" "gcc" "src/isif/CMakeFiles/aqua_isif.dir/registers.cpp.o.d"
  "/root/repo/src/isif/selftest.cpp" "src/isif/CMakeFiles/aqua_isif.dir/selftest.cpp.o" "gcc" "src/isif/CMakeFiles/aqua_isif.dir/selftest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aqua_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqua_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/aqua_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/aqua_analog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
