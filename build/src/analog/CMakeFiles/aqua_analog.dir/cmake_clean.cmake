file(REMOVE_RECURSE
  "CMakeFiles/aqua_analog.dir/amplifier.cpp.o"
  "CMakeFiles/aqua_analog.dir/amplifier.cpp.o.d"
  "CMakeFiles/aqua_analog.dir/bridge.cpp.o"
  "CMakeFiles/aqua_analog.dir/bridge.cpp.o.d"
  "CMakeFiles/aqua_analog.dir/dac.cpp.o"
  "CMakeFiles/aqua_analog.dir/dac.cpp.o.d"
  "CMakeFiles/aqua_analog.dir/noise.cpp.o"
  "CMakeFiles/aqua_analog.dir/noise.cpp.o.d"
  "CMakeFiles/aqua_analog.dir/rc_filter.cpp.o"
  "CMakeFiles/aqua_analog.dir/rc_filter.cpp.o.d"
  "CMakeFiles/aqua_analog.dir/sigma_delta.cpp.o"
  "CMakeFiles/aqua_analog.dir/sigma_delta.cpp.o.d"
  "libaqua_analog.a"
  "libaqua_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
