
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/amplifier.cpp" "src/analog/CMakeFiles/aqua_analog.dir/amplifier.cpp.o" "gcc" "src/analog/CMakeFiles/aqua_analog.dir/amplifier.cpp.o.d"
  "/root/repo/src/analog/bridge.cpp" "src/analog/CMakeFiles/aqua_analog.dir/bridge.cpp.o" "gcc" "src/analog/CMakeFiles/aqua_analog.dir/bridge.cpp.o.d"
  "/root/repo/src/analog/dac.cpp" "src/analog/CMakeFiles/aqua_analog.dir/dac.cpp.o" "gcc" "src/analog/CMakeFiles/aqua_analog.dir/dac.cpp.o.d"
  "/root/repo/src/analog/noise.cpp" "src/analog/CMakeFiles/aqua_analog.dir/noise.cpp.o" "gcc" "src/analog/CMakeFiles/aqua_analog.dir/noise.cpp.o.d"
  "/root/repo/src/analog/rc_filter.cpp" "src/analog/CMakeFiles/aqua_analog.dir/rc_filter.cpp.o" "gcc" "src/analog/CMakeFiles/aqua_analog.dir/rc_filter.cpp.o.d"
  "/root/repo/src/analog/sigma_delta.cpp" "src/analog/CMakeFiles/aqua_analog.dir/sigma_delta.cpp.o" "gcc" "src/analog/CMakeFiles/aqua_analog.dir/sigma_delta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aqua_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqua_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
