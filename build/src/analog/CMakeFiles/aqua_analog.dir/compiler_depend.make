# Empty compiler generated dependencies file for aqua_analog.
# This may be replaced when dependencies are built.
