file(REMOVE_RECURSE
  "libaqua_analog.a"
)
