file(REMOVE_RECURSE
  "CMakeFiles/aqua_util.dir/log.cpp.o"
  "CMakeFiles/aqua_util.dir/log.cpp.o.d"
  "CMakeFiles/aqua_util.dir/math.cpp.o"
  "CMakeFiles/aqua_util.dir/math.cpp.o.d"
  "CMakeFiles/aqua_util.dir/rng.cpp.o"
  "CMakeFiles/aqua_util.dir/rng.cpp.o.d"
  "CMakeFiles/aqua_util.dir/stats.cpp.o"
  "CMakeFiles/aqua_util.dir/stats.cpp.o.d"
  "CMakeFiles/aqua_util.dir/table.cpp.o"
  "CMakeFiles/aqua_util.dir/table.cpp.o.d"
  "libaqua_util.a"
  "libaqua_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
