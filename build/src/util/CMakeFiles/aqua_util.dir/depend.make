# Empty dependencies file for aqua_util.
# This may be replaced when dependencies are built.
