file(REMOVE_RECURSE
  "libaqua_util.a"
)
