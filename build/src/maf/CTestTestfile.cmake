# CMake generated Testfile for 
# Source directory: /root/repo/src/maf
# Build directory: /root/repo/build/src/maf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
