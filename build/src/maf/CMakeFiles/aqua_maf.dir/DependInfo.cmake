
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maf/die.cpp" "src/maf/CMakeFiles/aqua_maf.dir/die.cpp.o" "gcc" "src/maf/CMakeFiles/aqua_maf.dir/die.cpp.o.d"
  "/root/repo/src/maf/fouling.cpp" "src/maf/CMakeFiles/aqua_maf.dir/fouling.cpp.o" "gcc" "src/maf/CMakeFiles/aqua_maf.dir/fouling.cpp.o.d"
  "/root/repo/src/maf/package.cpp" "src/maf/CMakeFiles/aqua_maf.dir/package.cpp.o" "gcc" "src/maf/CMakeFiles/aqua_maf.dir/package.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aqua_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/aqua_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqua_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
