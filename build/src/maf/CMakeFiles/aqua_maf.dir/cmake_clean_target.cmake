file(REMOVE_RECURSE
  "libaqua_maf.a"
)
