# Empty compiler generated dependencies file for aqua_maf.
# This may be replaced when dependencies are built.
