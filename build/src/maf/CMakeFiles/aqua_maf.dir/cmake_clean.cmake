file(REMOVE_RECURSE
  "CMakeFiles/aqua_maf.dir/die.cpp.o"
  "CMakeFiles/aqua_maf.dir/die.cpp.o.d"
  "CMakeFiles/aqua_maf.dir/fouling.cpp.o"
  "CMakeFiles/aqua_maf.dir/fouling.cpp.o.d"
  "CMakeFiles/aqua_maf.dir/package.cpp.o"
  "CMakeFiles/aqua_maf.dir/package.cpp.o.d"
  "libaqua_maf.a"
  "libaqua_maf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_maf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
