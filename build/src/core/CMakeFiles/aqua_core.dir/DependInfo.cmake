
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/aqua_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/calibration_io.cpp" "src/core/CMakeFiles/aqua_core.dir/calibration_io.cpp.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/calibration_io.cpp.o.d"
  "/root/repo/src/core/cta.cpp" "src/core/CMakeFiles/aqua_core.dir/cta.cpp.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/cta.cpp.o.d"
  "/root/repo/src/core/drive_modes.cpp" "src/core/CMakeFiles/aqua_core.dir/drive_modes.cpp.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/drive_modes.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/aqua_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/health.cpp" "src/core/CMakeFiles/aqua_core.dir/health.cpp.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/health.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/aqua_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/power_budget.cpp" "src/core/CMakeFiles/aqua_core.dir/power_budget.cpp.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/power_budget.cpp.o.d"
  "/root/repo/src/core/rig.cpp" "src/core/CMakeFiles/aqua_core.dir/rig.cpp.o" "gcc" "src/core/CMakeFiles/aqua_core.dir/rig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aqua_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/aqua_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqua_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/aqua_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/aqua_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/maf/CMakeFiles/aqua_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/isif/CMakeFiles/aqua_isif.dir/DependInfo.cmake"
  "/root/repo/build/src/hydro/CMakeFiles/aqua_hydro.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/aqua_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
