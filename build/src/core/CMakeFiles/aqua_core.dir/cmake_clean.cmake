file(REMOVE_RECURSE
  "CMakeFiles/aqua_core.dir/calibration.cpp.o"
  "CMakeFiles/aqua_core.dir/calibration.cpp.o.d"
  "CMakeFiles/aqua_core.dir/calibration_io.cpp.o"
  "CMakeFiles/aqua_core.dir/calibration_io.cpp.o.d"
  "CMakeFiles/aqua_core.dir/cta.cpp.o"
  "CMakeFiles/aqua_core.dir/cta.cpp.o.d"
  "CMakeFiles/aqua_core.dir/drive_modes.cpp.o"
  "CMakeFiles/aqua_core.dir/drive_modes.cpp.o.d"
  "CMakeFiles/aqua_core.dir/estimator.cpp.o"
  "CMakeFiles/aqua_core.dir/estimator.cpp.o.d"
  "CMakeFiles/aqua_core.dir/health.cpp.o"
  "CMakeFiles/aqua_core.dir/health.cpp.o.d"
  "CMakeFiles/aqua_core.dir/monitor.cpp.o"
  "CMakeFiles/aqua_core.dir/monitor.cpp.o.d"
  "CMakeFiles/aqua_core.dir/power_budget.cpp.o"
  "CMakeFiles/aqua_core.dir/power_budget.cpp.o.d"
  "CMakeFiles/aqua_core.dir/rig.cpp.o"
  "CMakeFiles/aqua_core.dir/rig.cpp.o.d"
  "libaqua_core.a"
  "libaqua_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
