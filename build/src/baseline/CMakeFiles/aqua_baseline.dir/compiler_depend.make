# Empty compiler generated dependencies file for aqua_baseline.
# This may be replaced when dependencies are built.
