file(REMOVE_RECURSE
  "CMakeFiles/aqua_baseline.dir/magmeter.cpp.o"
  "CMakeFiles/aqua_baseline.dir/magmeter.cpp.o.d"
  "CMakeFiles/aqua_baseline.dir/turbine.cpp.o"
  "CMakeFiles/aqua_baseline.dir/turbine.cpp.o.d"
  "CMakeFiles/aqua_baseline.dir/venturi.cpp.o"
  "CMakeFiles/aqua_baseline.dir/venturi.cpp.o.d"
  "libaqua_baseline.a"
  "libaqua_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
