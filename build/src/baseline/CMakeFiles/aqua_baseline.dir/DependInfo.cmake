
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/magmeter.cpp" "src/baseline/CMakeFiles/aqua_baseline.dir/magmeter.cpp.o" "gcc" "src/baseline/CMakeFiles/aqua_baseline.dir/magmeter.cpp.o.d"
  "/root/repo/src/baseline/turbine.cpp" "src/baseline/CMakeFiles/aqua_baseline.dir/turbine.cpp.o" "gcc" "src/baseline/CMakeFiles/aqua_baseline.dir/turbine.cpp.o.d"
  "/root/repo/src/baseline/venturi.cpp" "src/baseline/CMakeFiles/aqua_baseline.dir/venturi.cpp.o" "gcc" "src/baseline/CMakeFiles/aqua_baseline.dir/venturi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aqua_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/aqua_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqua_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
