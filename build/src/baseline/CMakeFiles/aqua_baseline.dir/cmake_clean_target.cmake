file(REMOVE_RECURSE
  "libaqua_baseline.a"
)
