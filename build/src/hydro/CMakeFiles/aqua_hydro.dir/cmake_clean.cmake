file(REMOVE_RECURSE
  "CMakeFiles/aqua_hydro.dir/network.cpp.o"
  "CMakeFiles/aqua_hydro.dir/network.cpp.o.d"
  "CMakeFiles/aqua_hydro.dir/profiles.cpp.o"
  "CMakeFiles/aqua_hydro.dir/profiles.cpp.o.d"
  "CMakeFiles/aqua_hydro.dir/water_line.cpp.o"
  "CMakeFiles/aqua_hydro.dir/water_line.cpp.o.d"
  "libaqua_hydro.a"
  "libaqua_hydro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_hydro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
