file(REMOVE_RECURSE
  "libaqua_hydro.a"
)
