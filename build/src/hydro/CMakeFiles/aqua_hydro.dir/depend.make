# Empty dependencies file for aqua_hydro.
# This may be replaced when dependencies are built.
