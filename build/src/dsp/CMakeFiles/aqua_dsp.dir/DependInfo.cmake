
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/biquad.cpp" "src/dsp/CMakeFiles/aqua_dsp.dir/biquad.cpp.o" "gcc" "src/dsp/CMakeFiles/aqua_dsp.dir/biquad.cpp.o.d"
  "/root/repo/src/dsp/cic.cpp" "src/dsp/CMakeFiles/aqua_dsp.dir/cic.cpp.o" "gcc" "src/dsp/CMakeFiles/aqua_dsp.dir/cic.cpp.o.d"
  "/root/repo/src/dsp/fir.cpp" "src/dsp/CMakeFiles/aqua_dsp.dir/fir.cpp.o" "gcc" "src/dsp/CMakeFiles/aqua_dsp.dir/fir.cpp.o.d"
  "/root/repo/src/dsp/fixed_point.cpp" "src/dsp/CMakeFiles/aqua_dsp.dir/fixed_point.cpp.o" "gcc" "src/dsp/CMakeFiles/aqua_dsp.dir/fixed_point.cpp.o.d"
  "/root/repo/src/dsp/goertzel.cpp" "src/dsp/CMakeFiles/aqua_dsp.dir/goertzel.cpp.o" "gcc" "src/dsp/CMakeFiles/aqua_dsp.dir/goertzel.cpp.o.d"
  "/root/repo/src/dsp/median.cpp" "src/dsp/CMakeFiles/aqua_dsp.dir/median.cpp.o" "gcc" "src/dsp/CMakeFiles/aqua_dsp.dir/median.cpp.o.d"
  "/root/repo/src/dsp/nco.cpp" "src/dsp/CMakeFiles/aqua_dsp.dir/nco.cpp.o" "gcc" "src/dsp/CMakeFiles/aqua_dsp.dir/nco.cpp.o.d"
  "/root/repo/src/dsp/pid.cpp" "src/dsp/CMakeFiles/aqua_dsp.dir/pid.cpp.o" "gcc" "src/dsp/CMakeFiles/aqua_dsp.dir/pid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aqua_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
