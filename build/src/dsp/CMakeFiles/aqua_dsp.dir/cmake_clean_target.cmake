file(REMOVE_RECURSE
  "libaqua_dsp.a"
)
