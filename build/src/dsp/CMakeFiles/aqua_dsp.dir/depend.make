# Empty dependencies file for aqua_dsp.
# This may be replaced when dependencies are built.
