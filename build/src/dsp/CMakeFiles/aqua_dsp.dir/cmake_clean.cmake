file(REMOVE_RECURSE
  "CMakeFiles/aqua_dsp.dir/biquad.cpp.o"
  "CMakeFiles/aqua_dsp.dir/biquad.cpp.o.d"
  "CMakeFiles/aqua_dsp.dir/cic.cpp.o"
  "CMakeFiles/aqua_dsp.dir/cic.cpp.o.d"
  "CMakeFiles/aqua_dsp.dir/fir.cpp.o"
  "CMakeFiles/aqua_dsp.dir/fir.cpp.o.d"
  "CMakeFiles/aqua_dsp.dir/fixed_point.cpp.o"
  "CMakeFiles/aqua_dsp.dir/fixed_point.cpp.o.d"
  "CMakeFiles/aqua_dsp.dir/goertzel.cpp.o"
  "CMakeFiles/aqua_dsp.dir/goertzel.cpp.o.d"
  "CMakeFiles/aqua_dsp.dir/median.cpp.o"
  "CMakeFiles/aqua_dsp.dir/median.cpp.o.d"
  "CMakeFiles/aqua_dsp.dir/nco.cpp.o"
  "CMakeFiles/aqua_dsp.dir/nco.cpp.o.d"
  "CMakeFiles/aqua_dsp.dir/pid.cpp.o"
  "CMakeFiles/aqua_dsp.dir/pid.cpp.o.d"
  "libaqua_dsp.a"
  "libaqua_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
