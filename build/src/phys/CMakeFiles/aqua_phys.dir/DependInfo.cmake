
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phys/carbonate.cpp" "src/phys/CMakeFiles/aqua_phys.dir/carbonate.cpp.o" "gcc" "src/phys/CMakeFiles/aqua_phys.dir/carbonate.cpp.o.d"
  "/root/repo/src/phys/convection.cpp" "src/phys/CMakeFiles/aqua_phys.dir/convection.cpp.o" "gcc" "src/phys/CMakeFiles/aqua_phys.dir/convection.cpp.o.d"
  "/root/repo/src/phys/fluid.cpp" "src/phys/CMakeFiles/aqua_phys.dir/fluid.cpp.o" "gcc" "src/phys/CMakeFiles/aqua_phys.dir/fluid.cpp.o.d"
  "/root/repo/src/phys/membrane.cpp" "src/phys/CMakeFiles/aqua_phys.dir/membrane.cpp.o" "gcc" "src/phys/CMakeFiles/aqua_phys.dir/membrane.cpp.o.d"
  "/root/repo/src/phys/resistor.cpp" "src/phys/CMakeFiles/aqua_phys.dir/resistor.cpp.o" "gcc" "src/phys/CMakeFiles/aqua_phys.dir/resistor.cpp.o.d"
  "/root/repo/src/phys/saturation.cpp" "src/phys/CMakeFiles/aqua_phys.dir/saturation.cpp.o" "gcc" "src/phys/CMakeFiles/aqua_phys.dir/saturation.cpp.o.d"
  "/root/repo/src/phys/thermal.cpp" "src/phys/CMakeFiles/aqua_phys.dir/thermal.cpp.o" "gcc" "src/phys/CMakeFiles/aqua_phys.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/aqua_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
