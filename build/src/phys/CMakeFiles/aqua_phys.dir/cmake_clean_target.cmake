file(REMOVE_RECURSE
  "libaqua_phys.a"
)
