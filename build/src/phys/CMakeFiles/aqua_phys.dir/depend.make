# Empty dependencies file for aqua_phys.
# This may be replaced when dependencies are built.
