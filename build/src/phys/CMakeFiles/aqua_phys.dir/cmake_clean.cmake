file(REMOVE_RECURSE
  "CMakeFiles/aqua_phys.dir/carbonate.cpp.o"
  "CMakeFiles/aqua_phys.dir/carbonate.cpp.o.d"
  "CMakeFiles/aqua_phys.dir/convection.cpp.o"
  "CMakeFiles/aqua_phys.dir/convection.cpp.o.d"
  "CMakeFiles/aqua_phys.dir/fluid.cpp.o"
  "CMakeFiles/aqua_phys.dir/fluid.cpp.o.d"
  "CMakeFiles/aqua_phys.dir/membrane.cpp.o"
  "CMakeFiles/aqua_phys.dir/membrane.cpp.o.d"
  "CMakeFiles/aqua_phys.dir/resistor.cpp.o"
  "CMakeFiles/aqua_phys.dir/resistor.cpp.o.d"
  "CMakeFiles/aqua_phys.dir/saturation.cpp.o"
  "CMakeFiles/aqua_phys.dir/saturation.cpp.o.d"
  "CMakeFiles/aqua_phys.dir/thermal.cpp.o"
  "CMakeFiles/aqua_phys.dir/thermal.cpp.o.d"
  "libaqua_phys.a"
  "libaqua_phys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
