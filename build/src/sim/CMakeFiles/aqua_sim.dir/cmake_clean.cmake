file(REMOVE_RECURSE
  "CMakeFiles/aqua_sim.dir/integrator.cpp.o"
  "CMakeFiles/aqua_sim.dir/integrator.cpp.o.d"
  "CMakeFiles/aqua_sim.dir/schedule.cpp.o"
  "CMakeFiles/aqua_sim.dir/schedule.cpp.o.d"
  "CMakeFiles/aqua_sim.dir/trace.cpp.o"
  "CMakeFiles/aqua_sim.dir/trace.cpp.o.d"
  "libaqua_sim.a"
  "libaqua_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqua_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
