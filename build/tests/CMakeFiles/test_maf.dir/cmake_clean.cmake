file(REMOVE_RECURSE
  "CMakeFiles/test_maf.dir/maf/test_die.cpp.o"
  "CMakeFiles/test_maf.dir/maf/test_die.cpp.o.d"
  "CMakeFiles/test_maf.dir/maf/test_fouling.cpp.o"
  "CMakeFiles/test_maf.dir/maf/test_fouling.cpp.o.d"
  "CMakeFiles/test_maf.dir/maf/test_package.cpp.o"
  "CMakeFiles/test_maf.dir/maf/test_package.cpp.o.d"
  "test_maf"
  "test_maf.pdb"
  "test_maf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
