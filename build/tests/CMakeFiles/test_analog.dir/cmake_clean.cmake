file(REMOVE_RECURSE
  "CMakeFiles/test_analog.dir/analog/test_amplifier.cpp.o"
  "CMakeFiles/test_analog.dir/analog/test_amplifier.cpp.o.d"
  "CMakeFiles/test_analog.dir/analog/test_bridge.cpp.o"
  "CMakeFiles/test_analog.dir/analog/test_bridge.cpp.o.d"
  "CMakeFiles/test_analog.dir/analog/test_dac.cpp.o"
  "CMakeFiles/test_analog.dir/analog/test_dac.cpp.o.d"
  "CMakeFiles/test_analog.dir/analog/test_noise.cpp.o"
  "CMakeFiles/test_analog.dir/analog/test_noise.cpp.o.d"
  "CMakeFiles/test_analog.dir/analog/test_rc_filter.cpp.o"
  "CMakeFiles/test_analog.dir/analog/test_rc_filter.cpp.o.d"
  "CMakeFiles/test_analog.dir/analog/test_sigma_delta.cpp.o"
  "CMakeFiles/test_analog.dir/analog/test_sigma_delta.cpp.o.d"
  "test_analog"
  "test_analog.pdb"
  "test_analog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
