file(REMOVE_RECURSE
  "CMakeFiles/test_hydro.dir/hydro/test_network.cpp.o"
  "CMakeFiles/test_hydro.dir/hydro/test_network.cpp.o.d"
  "CMakeFiles/test_hydro.dir/hydro/test_profiles.cpp.o"
  "CMakeFiles/test_hydro.dir/hydro/test_profiles.cpp.o.d"
  "CMakeFiles/test_hydro.dir/hydro/test_water_line.cpp.o"
  "CMakeFiles/test_hydro.dir/hydro/test_water_line.cpp.o.d"
  "test_hydro"
  "test_hydro.pdb"
  "test_hydro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hydro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
