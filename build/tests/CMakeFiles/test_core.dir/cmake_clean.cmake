file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_calibration.cpp.o"
  "CMakeFiles/test_core.dir/core/test_calibration.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_calibration_io.cpp.o"
  "CMakeFiles/test_core.dir/core/test_calibration_io.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cta.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cta.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cta_sweeps.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cta_sweeps.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_drive_modes.cpp.o"
  "CMakeFiles/test_core.dir/core/test_drive_modes.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_estimator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_estimator.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_health.cpp.o"
  "CMakeFiles/test_core.dir/core/test_health.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_monitor.cpp.o"
  "CMakeFiles/test_core.dir/core/test_monitor.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_power_budget.cpp.o"
  "CMakeFiles/test_core.dir/core/test_power_budget.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
