file(REMOVE_RECURSE
  "CMakeFiles/test_isif.dir/isif/test_channel.cpp.o"
  "CMakeFiles/test_isif.dir/isif/test_channel.cpp.o.d"
  "CMakeFiles/test_isif.dir/isif/test_dac_ctrl.cpp.o"
  "CMakeFiles/test_isif.dir/isif/test_dac_ctrl.cpp.o.d"
  "CMakeFiles/test_isif.dir/isif/test_firmware.cpp.o"
  "CMakeFiles/test_isif.dir/isif/test_firmware.cpp.o.d"
  "CMakeFiles/test_isif.dir/isif/test_ip.cpp.o"
  "CMakeFiles/test_isif.dir/isif/test_ip.cpp.o.d"
  "CMakeFiles/test_isif.dir/isif/test_platform.cpp.o"
  "CMakeFiles/test_isif.dir/isif/test_platform.cpp.o.d"
  "CMakeFiles/test_isif.dir/isif/test_registers.cpp.o"
  "CMakeFiles/test_isif.dir/isif/test_registers.cpp.o.d"
  "CMakeFiles/test_isif.dir/isif/test_selftest.cpp.o"
  "CMakeFiles/test_isif.dir/isif/test_selftest.cpp.o.d"
  "test_isif"
  "test_isif.pdb"
  "test_isif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
