# Empty dependencies file for test_isif.
# This may be replaced when dependencies are built.
