file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/dsp/test_biquad.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_biquad.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_cic.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_cic.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_fir.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_fir.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_fixed_point.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_fixed_point.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_goertzel.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_goertzel.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_median.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_median.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_nco.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_nco.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_pid.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_pid.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
