file(REMOVE_RECURSE
  "CMakeFiles/test_phys.dir/phys/test_carbonate.cpp.o"
  "CMakeFiles/test_phys.dir/phys/test_carbonate.cpp.o.d"
  "CMakeFiles/test_phys.dir/phys/test_convection.cpp.o"
  "CMakeFiles/test_phys.dir/phys/test_convection.cpp.o.d"
  "CMakeFiles/test_phys.dir/phys/test_fluid.cpp.o"
  "CMakeFiles/test_phys.dir/phys/test_fluid.cpp.o.d"
  "CMakeFiles/test_phys.dir/phys/test_membrane.cpp.o"
  "CMakeFiles/test_phys.dir/phys/test_membrane.cpp.o.d"
  "CMakeFiles/test_phys.dir/phys/test_resistor.cpp.o"
  "CMakeFiles/test_phys.dir/phys/test_resistor.cpp.o.d"
  "CMakeFiles/test_phys.dir/phys/test_saturation.cpp.o"
  "CMakeFiles/test_phys.dir/phys/test_saturation.cpp.o.d"
  "CMakeFiles/test_phys.dir/phys/test_thermal.cpp.o"
  "CMakeFiles/test_phys.dir/phys/test_thermal.cpp.o.d"
  "test_phys"
  "test_phys.pdb"
  "test_phys[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
