# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_phys[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_analog[1]_include.cmake")
include("/root/repo/build/tests/test_maf[1]_include.cmake")
include("/root/repo/build/tests/test_isif[1]_include.cmake")
include("/root/repo/build/tests/test_hydro[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
