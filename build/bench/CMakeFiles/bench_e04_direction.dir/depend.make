# Empty dependencies file for bench_e04_direction.
# This may be replaced when dependencies are built.
