file(REMOVE_RECURSE
  "CMakeFiles/bench_e04_direction.dir/bench_e04_direction.cpp.o"
  "CMakeFiles/bench_e04_direction.dir/bench_e04_direction.cpp.o.d"
  "bench_e04_direction"
  "bench_e04_direction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_direction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
