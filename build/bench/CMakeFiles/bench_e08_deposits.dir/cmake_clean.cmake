file(REMOVE_RECURSE
  "CMakeFiles/bench_e08_deposits.dir/bench_e08_deposits.cpp.o"
  "CMakeFiles/bench_e08_deposits.dir/bench_e08_deposits.cpp.o.d"
  "bench_e08_deposits"
  "bench_e08_deposits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e08_deposits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
