# Empty dependencies file for bench_e08_deposits.
# This may be replaced when dependencies are built.
