file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_hwswin.dir/bench_e12_hwswin.cpp.o"
  "CMakeFiles/bench_e12_hwswin.dir/bench_e12_hwswin.cpp.o.d"
  "bench_e12_hwswin"
  "bench_e12_hwswin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_hwswin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
