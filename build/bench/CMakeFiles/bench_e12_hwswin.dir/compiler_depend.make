# Empty compiler generated dependencies file for bench_e12_hwswin.
# This may be replaced when dependencies are built.
