# Empty dependencies file for bench_e11_step_response.
# This may be replaced when dependencies are built.
