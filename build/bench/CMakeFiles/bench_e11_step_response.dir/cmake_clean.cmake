file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_step_response.dir/bench_e11_step_response.cpp.o"
  "CMakeFiles/bench_e11_step_response.dir/bench_e11_step_response.cpp.o.d"
  "bench_e11_step_response"
  "bench_e11_step_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_step_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
