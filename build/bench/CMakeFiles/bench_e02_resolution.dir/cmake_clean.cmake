file(REMOVE_RECURSE
  "CMakeFiles/bench_e02_resolution.dir/bench_e02_resolution.cpp.o"
  "CMakeFiles/bench_e02_resolution.dir/bench_e02_resolution.cpp.o.d"
  "bench_e02_resolution"
  "bench_e02_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e02_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
