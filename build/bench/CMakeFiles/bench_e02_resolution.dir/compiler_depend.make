# Empty compiler generated dependencies file for bench_e02_resolution.
# This may be replaced when dependencies are built.
