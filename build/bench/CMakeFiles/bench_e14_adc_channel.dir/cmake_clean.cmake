file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_adc_channel.dir/bench_e14_adc_channel.cpp.o"
  "CMakeFiles/bench_e14_adc_channel.dir/bench_e14_adc_channel.cpp.o.d"
  "bench_e14_adc_channel"
  "bench_e14_adc_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_adc_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
