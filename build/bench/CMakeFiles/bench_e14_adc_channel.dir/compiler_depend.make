# Empty compiler generated dependencies file for bench_e14_adc_channel.
# This may be replaced when dependencies are built.
