# Empty dependencies file for bench_e15_leak_monitor.
# This may be replaced when dependencies are built.
