file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_leak_monitor.dir/bench_e15_leak_monitor.cpp.o"
  "CMakeFiles/bench_e15_leak_monitor.dir/bench_e15_leak_monitor.cpp.o.d"
  "bench_e15_leak_monitor"
  "bench_e15_leak_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_leak_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
