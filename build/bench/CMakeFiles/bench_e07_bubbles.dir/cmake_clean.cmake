file(REMOVE_RECURSE
  "CMakeFiles/bench_e07_bubbles.dir/bench_e07_bubbles.cpp.o"
  "CMakeFiles/bench_e07_bubbles.dir/bench_e07_bubbles.cpp.o.d"
  "bench_e07_bubbles"
  "bench_e07_bubbles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_bubbles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
