# Empty compiler generated dependencies file for bench_e07_bubbles.
# This may be replaced when dependencies are built.
