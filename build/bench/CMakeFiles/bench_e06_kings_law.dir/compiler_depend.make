# Empty compiler generated dependencies file for bench_e06_kings_law.
# This may be replaced when dependencies are built.
