file(REMOVE_RECURSE
  "CMakeFiles/bench_e06_kings_law.dir/bench_e06_kings_law.cpp.o"
  "CMakeFiles/bench_e06_kings_law.dir/bench_e06_kings_law.cpp.o.d"
  "bench_e06_kings_law"
  "bench_e06_kings_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e06_kings_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
