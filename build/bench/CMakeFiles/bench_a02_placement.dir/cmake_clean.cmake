file(REMOVE_RECURSE
  "CMakeFiles/bench_a02_placement.dir/bench_a02_placement.cpp.o"
  "CMakeFiles/bench_a02_placement.dir/bench_a02_placement.cpp.o.d"
  "bench_a02_placement"
  "bench_a02_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a02_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
