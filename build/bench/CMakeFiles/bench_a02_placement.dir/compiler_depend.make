# Empty compiler generated dependencies file for bench_a02_placement.
# This may be replaced when dependencies are built.
