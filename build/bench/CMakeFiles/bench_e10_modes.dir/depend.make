# Empty dependencies file for bench_e10_modes.
# This may be replaced when dependencies are built.
