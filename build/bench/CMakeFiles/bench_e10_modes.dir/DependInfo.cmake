
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e10_modes.cpp" "bench/CMakeFiles/bench_e10_modes.dir/bench_e10_modes.cpp.o" "gcc" "bench/CMakeFiles/bench_e10_modes.dir/bench_e10_modes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aqua_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isif/CMakeFiles/aqua_isif.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/aqua_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/aqua_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/hydro/CMakeFiles/aqua_hydro.dir/DependInfo.cmake"
  "/root/repo/build/src/maf/CMakeFiles/aqua_maf.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/aqua_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/phys/CMakeFiles/aqua_phys.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqua_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/aqua_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
