file(REMOVE_RECURSE
  "CMakeFiles/bench_e03_repeatability.dir/bench_e03_repeatability.cpp.o"
  "CMakeFiles/bench_e03_repeatability.dir/bench_e03_repeatability.cpp.o.d"
  "bench_e03_repeatability"
  "bench_e03_repeatability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_repeatability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
