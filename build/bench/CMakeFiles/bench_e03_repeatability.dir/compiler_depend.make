# Empty compiler generated dependencies file for bench_e03_repeatability.
# This may be replaced when dependencies are built.
