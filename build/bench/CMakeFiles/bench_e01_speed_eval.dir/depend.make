# Empty dependencies file for bench_e01_speed_eval.
# This may be replaced when dependencies are built.
