file(REMOVE_RECURSE
  "CMakeFiles/bench_e01_speed_eval.dir/bench_e01_speed_eval.cpp.o"
  "CMakeFiles/bench_e01_speed_eval.dir/bench_e01_speed_eval.cpp.o.d"
  "bench_e01_speed_eval"
  "bench_e01_speed_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e01_speed_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
