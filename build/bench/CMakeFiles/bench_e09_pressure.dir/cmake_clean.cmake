file(REMOVE_RECURSE
  "CMakeFiles/bench_e09_pressure.dir/bench_e09_pressure.cpp.o"
  "CMakeFiles/bench_e09_pressure.dir/bench_e09_pressure.cpp.o.d"
  "bench_e09_pressure"
  "bench_e09_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
