# Empty dependencies file for bench_e09_pressure.
# This may be replaced when dependencies are built.
