# Empty dependencies file for bench_a01_tradeoffs.
# This may be replaced when dependencies are built.
