file(REMOVE_RECURSE
  "CMakeFiles/bench_a01_tradeoffs.dir/bench_a01_tradeoffs.cpp.o"
  "CMakeFiles/bench_a01_tradeoffs.dir/bench_a01_tradeoffs.cpp.o.d"
  "bench_a01_tradeoffs"
  "bench_a01_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a01_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
