file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_power.dir/bench_e13_power.cpp.o"
  "CMakeFiles/bench_e13_power.dir/bench_e13_power.cpp.o.d"
  "bench_e13_power"
  "bench_e13_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
