# Empty compiler generated dependencies file for bench_e13_power.
# This may be replaced when dependencies are built.
