file(REMOVE_RECURSE
  "CMakeFiles/water_station.dir/water_station.cpp.o"
  "CMakeFiles/water_station.dir/water_station.cpp.o.d"
  "water_station"
  "water_station.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_station.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
