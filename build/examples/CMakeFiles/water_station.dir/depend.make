# Empty dependencies file for water_station.
# This may be replaced when dependencies are built.
