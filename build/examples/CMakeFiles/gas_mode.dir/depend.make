# Empty dependencies file for gas_mode.
# This may be replaced when dependencies are built.
