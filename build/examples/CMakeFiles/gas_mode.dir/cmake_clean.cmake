file(REMOVE_RECURSE
  "CMakeFiles/gas_mode.dir/gas_mode.cpp.o"
  "CMakeFiles/gas_mode.dir/gas_mode.cpp.o.d"
  "gas_mode"
  "gas_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gas_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
