# Empty compiler generated dependencies file for diagnostics.
# This may be replaced when dependencies are built.
